"""The distributed socket transport: worker host, registry, executor.

Covers the pieces the frame-codec property tests don't: the
:class:`~repro.parallel.dist.WorkerHost` request loop, the
generation-token protocol over the wire, the client registry's
dispatch and statistics, the ``ProcessMap(transport="socket")``
integration (byte-identical with serial, stats recorded), and the
``popqc worker`` CLI subcommand against a real subprocess
(``dist``-marked; CI's ``dist-smoke`` job points it at externally
launched workers through ``POPQC_DIST_HOSTS``).
"""

import os
import pickle
import re
import subprocess
import sys

import pytest

from repro.circuits import CNOT, H, X, random_redundant_circuit, to_qasm
from repro.circuits.encoding import encode_segment
from repro.core import popqc
from repro.oracles import IdentityOracle, NamOracle
from repro.parallel import (
    ProcessMap,
    SocketHostPool,
    StaleOracleError,
    WorkerHost,
    WorkerUnavailableError,
    local_cluster,
)
from repro.parallel.dist import (
    HostConnection,
    RemoteOracleError,
    pack_segments_payload,
    parse_address,
)


def _segments(count=8):
    return [[H(0), H(0), X(1), CNOT(0, 1)] for _ in range(count)]


class RaisingOracle:
    """Fails every call with an ordinary exception."""

    def __call__(self, segment):
        raise ValueError("boom over the wire")


class TestParseAddress:
    def test_host_and_port(self):
        assert parse_address("10.0.0.7:9001") == ("10.0.0.7", 9001)

    def test_bare_port_defaults_to_loopback(self):
        assert parse_address(":9001") == ("127.0.0.1", 9001)

    @pytest.mark.parametrize("bad", ["nohost", "host:", "host:abc"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError, match="HOST:PORT"):
            parse_address(bad)


class TestWorkerHostProtocol:
    def test_register_ping_and_batch(self):
        with local_cluster(1) as hosts:
            conn = HostConnection(hosts[0])
            conn.connect()
            try:
                conn.register(pickle.dumps(NamOracle()), 1)
                conn.ping()
                payload = pack_segments_payload(
                    1, 0, [encode_segment(seg) for seg in _segments(3)]
                )
                blobs = conn.run_batch(0, payload)
                assert len(blobs) == 3
                assert all(isinstance(b, bytes) and b for b in blobs)
            finally:
                conn.close()

    def test_stale_generation_refused_with_typed_error(self):
        with local_cluster(1) as hosts:
            conn = HostConnection(hosts[0])
            conn.connect()
            try:
                conn.register(pickle.dumps(IdentityOracle()), 3)
                payload = pack_segments_payload(
                    4, 0, [encode_segment(_segments(1)[0])]
                )
                with pytest.raises(StaleOracleError, match="generation 4"):
                    conn.run_batch(0, payload)
            finally:
                conn.close()

    def test_unregistered_connection_refused(self):
        from repro.parallel.dist import FrameProtocolError

        with local_cluster(1) as hosts:
            conn = HostConnection(hosts[0])
            conn.connect()
            try:
                payload = pack_segments_payload(
                    0, 0, [encode_segment(_segments(1)[0])]
                )
                with pytest.raises(FrameProtocolError, match="no oracle"):
                    conn.run_batch(0, payload)
            finally:
                conn.close()

    def test_remote_oracle_exception_propagates(self):
        with local_cluster(1) as hosts:
            conn = HostConnection(hosts[0])
            conn.connect()
            try:
                conn.register(pickle.dumps(RaisingOracle()), 1)
                payload = pack_segments_payload(
                    1, 0, [encode_segment(_segments(1)[0])]
                )
                with pytest.raises(RemoteOracleError, match="boom over the wire"):
                    conn.run_batch(0, payload)
                # the connection survives the failed batch
                conn.ping()
            finally:
                conn.close()

    def test_worker_counts_traffic(self):
        host = WorkerHost().start()
        try:
            pm = ProcessMap(serial_cutoff=0, transport="socket", hosts=[host.address])
            try:
                pm.map_segments(NamOracle(), _segments())
            finally:
                pm.close()
            assert host.segments_served == 8
            assert host.batches_served >= 1
            assert host.bytes_received > 0 and host.bytes_sent > 0
        finally:
            host.stop()


class TestSocketHostPool:
    def test_requires_hosts(self):
        with pytest.raises(ValueError, match="at least one host"):
            SocketHostPool([])

    def test_register_with_no_reachable_host_raises(self):
        pool = SocketHostPool(["127.0.0.1:1"])  # port 1: nothing listens
        with pytest.raises(WorkerUnavailableError, match="no worker host"):
            pool.register(IdentityOracle(), 1)

    def test_round_spreads_work_across_hosts(self):
        with local_cluster(2) as hosts:
            pool = SocketHostPool(hosts)
            try:
                pool.register(IdentityOracle(), 1)
                encoded = [encode_segment(seg) for seg in _segments(12)]
                batches = [
                    (i, 2, pack_segments_payload(1, i, encoded[2 * i : 2 * i + 2]))
                    for i in range(6)
                ]
                results = pool.run_round(batches)
                assert [len(blobs) for blobs in results] == [2] * 6
                assert sum(pool.host_segments.values()) == 12
                assert pool.bytes_sent > 0 and pool.bytes_received > 0
            finally:
                pool.close()


class TestProcessMapSocket:
    def test_requires_hosts(self):
        with pytest.raises(ValueError, match="requires hosts"):
            ProcessMap(transport="socket")

    def test_hosts_rejected_for_other_transports(self):
        with pytest.raises(ValueError, match="only applies"):
            ProcessMap(transport="encoded", hosts=["127.0.0.1:9001"])

    def test_workers_default_to_host_count(self):
        with local_cluster(2) as hosts:
            pm = ProcessMap(transport="socket", hosts=hosts)
            try:
                assert pm.workers == 2
            finally:
                pm.close()

    def test_map_segments_matches_inline(self):
        oracle = NamOracle()
        segments = _segments(10)
        want = [oracle(list(seg)) for seg in segments]
        with local_cluster(2) as hosts:
            pm = ProcessMap(serial_cutoff=0, transport="socket", hosts=hosts)
            try:
                got = pm.map_segments(oracle, segments)
            finally:
                pm.close()
        assert [list(res) for res in got] == want

    def test_popqc_stats_record_socket_run(self):
        circuit = random_redundant_circuit(5, 300, seed=101, redundancy=0.6)
        with local_cluster(2) as hosts:
            pm = ProcessMap(serial_cutoff=0, transport="socket", hosts=hosts)
            try:
                res = popqc(circuit, NamOracle(), 16, parmap=pm)
            finally:
                pm.close()
        stats = res.stats
        assert stats.transport == "socket"
        assert stats.socket_bytes_sent > 0
        assert stats.socket_bytes_received > 0
        assert stats.socket_wire_bytes == (
            stats.socket_bytes_sent + stats.socket_bytes_received
        )
        assert stats.socket_reconnects == 0
        assert sum(h["segments"] for h in stats.socket_hosts.values()) > 0
        assert all(h["segments_per_s"] >= 0 for h in stats.socket_hosts.values())
        assert stats.batch_dispatches > 0
        assert stats.mean_batch_size >= 1.0

    def test_heartbeat_pings_idle_connections_between_rounds(self):
        """With a zero heartbeat interval every idle connection is
        pinged before the next round; a host that died since the last
        round is detected by the failed ping and reconnected (or
        dropped) *before* any batch is risked on it."""
        oracle = IdentityOracle()
        with local_cluster(2) as hosts:
            pm = ProcessMap(serial_cutoff=0, transport="socket", hosts=hosts)
            try:
                pm.map_segments(oracle, _segments())
                pm._socket_pool.heartbeat_seconds = 0.0
                pm.map_segments(oracle, _segments())
                assert pm._socket_pool.heartbeats >= 2  # both conns pinged
            finally:
                pm.close()

    def test_failed_heartbeat_triggers_reconnect(self):
        oracle = IdentityOracle()
        host = WorkerHost().start()
        port = host.port
        pm = ProcessMap(serial_cutoff=0, transport="socket", hosts=[host.address])
        try:
            assert [list(r) for r in pm.map_segments(oracle, _segments())]
            host.stop()
            host = WorkerHost(port=port).start()  # same address, fresh server
            pm._socket_pool.heartbeat_seconds = 0.0
            got = pm.map_segments(oracle, _segments())
            assert [list(res) for res in got] == _segments()
            assert pm.socket_reconnects >= 1
        finally:
            pm.close()
            host.stop()

    def test_oracle_swap_bumps_generation(self):
        with local_cluster(1) as hosts:
            pm = ProcessMap(serial_cutoff=0, transport="socket", hosts=hosts)
            try:
                pm.map_segments(NamOracle(), _segments())
                gen_first = pm._oracle_generation
                pm.map_segments(IdentityOracle(), _segments())
                assert pm._oracle_generation == gen_first + 1
            finally:
                pm.close()


@pytest.mark.dist
class TestWorkerSubprocess:
    """The socket transport against real ``popqc worker`` processes.

    CI's ``dist-smoke`` job launches the workers itself and passes
    their addresses through ``POPQC_DIST_HOSTS``; elsewhere the test
    spawns (and reaps) its own subprocess workers.
    """

    @pytest.fixture()
    def worker_addresses(self):
        env_hosts = os.environ.get("POPQC_DIST_HOSTS")
        if env_hosts:
            yield [h.strip() for h in env_hosts.split(",") if h.strip()]
            return
        procs, addresses = [], []
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        try:
            for _ in range(2):
                proc = subprocess.Popen(
                    [sys.executable, "-m", "repro.cli", "worker", "--bind",
                     "127.0.0.1:0"],
                    stdout=subprocess.PIPE,
                    text=True,
                    env=env,
                )
                procs.append(proc)
                line = proc.stdout.readline()
                match = re.search(r"listening on (\S+)", line)
                assert match, f"unexpected worker banner: {line!r}"
                addresses.append(match.group(1))
            yield addresses
        finally:
            for proc in procs:
                proc.terminate()
            for proc in procs:
                proc.wait(timeout=10)

    def test_socket_equivalence_against_real_workers(self, worker_addresses):
        circuit = random_redundant_circuit(5, 300, seed=101, redundancy=0.6)
        want = popqc(circuit, NamOracle(), 16)
        pm = ProcessMap(
            serial_cutoff=0, transport="socket", hosts=worker_addresses
        )
        try:
            got = popqc(circuit, NamOracle(), 16, parmap=pm)
        finally:
            pm.close()
        assert got.circuit.gates == want.circuit.gates
        assert to_qasm(got.circuit) == to_qasm(want.circuit)
        assert got.stats.rounds == want.stats.rounds
        assert got.stats.oracle_calls == want.stats.oracle_calls
        assert got.stats.transport == "socket"


class TestCapacityAdvertisement:
    """Worker-host capacity: advertised in REGISTER_OK, weighted drain."""

    def test_register_reply_carries_capacity(self):
        host = WorkerHost(capacity=4).start()
        try:
            conn = HostConnection(host.address)
            conn.connect()
            try:
                assert conn.capacity == 1  # until a registration succeeds
                conn.register(pickle.dumps(IdentityOracle()), 1)
                assert conn.capacity == 4
            finally:
                conn.close()
        finally:
            host.stop()

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            WorkerHost(capacity=0)

    def test_pool_exposes_host_capacity(self):
        with local_cluster(2, capacities=[3, 1]) as hosts:
            pool = SocketHostPool(hosts)
            try:
                assert pool.host_capacity == {hosts[0]: 1, hosts[1]: 1}
                pool.register(IdentityOracle(), 1)
                assert pool.host_capacity == {hosts[0]: 3, hosts[1]: 1}
            finally:
                pool.close()

    def test_weighted_round_is_complete_and_ordered(self):
        """A heterogeneous cluster still returns every batch's results
        in request order (the weighted drain changes who serves a
        batch, never what comes back)."""
        with local_cluster(2, capacities=[4, 1]) as hosts:
            pool = SocketHostPool(hosts)
            try:
                pool.register(IdentityOracle(), 1)
                encoded = [encode_segment(seg) for seg in _segments(12)]
                batches = [
                    (i, 1, pack_segments_payload(1, i, [encoded[i]]))
                    for i in range(12)
                ]
                results = pool.run_round(batches)
                assert [len(blobs) for blobs in results] == [1] * 12
                assert sum(pool.host_segments.values()) == 12
            finally:
                pool.close()

    def test_sole_capacity_host_takes_whole_round_in_one_trip(self):
        """With one host of capacity >= the batch count, the drain
        takes the entire round in a single queue trip."""
        with local_cluster(1, capacities=[8]) as hosts:
            pool = SocketHostPool(hosts)
            try:
                pool.register(IdentityOracle(), 1)
                encoded = [encode_segment(seg) for seg in _segments(6)]
                batches = [
                    (i, 1, pack_segments_payload(1, i, [encoded[i]]))
                    for i in range(6)
                ]
                results = pool.run_round(batches)
                assert len(results) == 6
                assert pool.host_segments[hosts[0]] == 6
            finally:
                pool.close()

    def test_capacity_reported_in_popqc_stats(self):
        circuit = random_redundant_circuit(5, 300, seed=103, redundancy=0.6)
        with local_cluster(2, capacities=[2, 1]) as hosts:
            pm = ProcessMap(serial_cutoff=0, transport="socket", hosts=hosts)
            try:
                res = popqc(circuit, NamOracle(), 16, parmap=pm)
            finally:
                pm.close()
        capacities = {
            addr: entry["capacity"]
            for addr, entry in res.stats.socket_hosts.items()
        }
        for addr, capacity in capacities.items():
            assert capacity == (2 if addr == hosts[0] else 1)

    def test_capacities_length_must_match(self):
        with pytest.raises(ValueError, match="capacities"):
            with local_cluster(3, capacities=[2]):
                pass  # pragma: no cover - must raise before yielding


class TestWorkerAuth:
    """The AUTH handshake on the worker protocol: one shared token,
    presented before any other frame, refused in constant time."""

    def test_token_round_trip(self):
        host = WorkerHost(auth_token="s3cret").start()
        try:
            conn = HostConnection(host.address, auth_token="s3cret")
            conn.connect()
            try:
                conn.register(pickle.dumps(IdentityOracle()), 1)
                conn.ping()
            finally:
                conn.close()
            assert host.auth_failures == 0
        finally:
            host.stop()

    def test_wrong_token_refused_and_never_retried(self):
        from repro.parallel.dist import AuthenticationError

        host = WorkerHost(auth_token="s3cret").start()
        try:
            conn = HostConnection(host.address, auth_token="wrong")
            with pytest.raises(AuthenticationError, match="invalid auth token"):
                conn.connect()
            assert not conn.connected  # the failed socket was torn down
            assert host.auth_failures == 1
        finally:
            host.stop()

    def test_unauthenticated_frame_refused_with_typed_error(self):
        """A client that skips AUTH gets a typed ERROR on its first
        frame — never service, never a hang."""
        from repro.parallel.dist import AuthenticationError

        host = WorkerHost(auth_token="s3cret").start()
        try:
            conn = HostConnection(host.address)  # no token configured
            conn.connect()
            try:
                with pytest.raises(
                    AuthenticationError, match="authentication required"
                ):
                    conn.register(pickle.dumps(IdentityOracle()), 1)
            finally:
                conn.close()
            assert host.auth_failures == 1
        finally:
            host.stop()

    def test_auth_is_noop_on_open_host(self):
        """Presenting a token to a host that demands none still gets
        AUTH_OK, so one client config works against both."""
        host = WorkerHost().start()
        try:
            conn = HostConnection(host.address, auth_token="anything")
            conn.connect()
            try:
                conn.ping()
            finally:
                conn.close()
        finally:
            host.stop()

    def test_socket_pool_authenticates_every_host(self):
        with local_cluster(2, auth_token="s3cret") as hosts:
            pool = SocketHostPool(hosts, auth_token="s3cret")
            try:
                pool.register(IdentityOracle(), 1)
                encoded = [encode_segment(seg) for seg in _segments(4)]
                batches = [
                    (i, 1, pack_segments_payload(1, i, [encoded[i]]))
                    for i in range(4)
                ]
                assert len(pool.run_round(batches)) == 4
            finally:
                pool.close()

    def test_process_map_carries_the_token(self):
        circuit = random_redundant_circuit(5, 240, seed=104, redundancy=0.6)
        reference = popqc(circuit, NamOracle(), 16)
        with local_cluster(1, auth_token="s3cret") as hosts:
            pm = ProcessMap(
                serial_cutoff=0,
                transport="socket",
                hosts=hosts,
                auth_token="s3cret",
            )
            try:
                res = popqc(circuit, NamOracle(), 16, parmap=pm)
            finally:
                pm.close()
        assert to_qasm(res.circuit) == to_qasm(reference.circuit)


class TestIdleTimeout:
    def test_silent_connection_is_dropped(self):
        """A connected client that never sends a frame is cut loose
        after the idle timeout instead of pinning a handler thread."""
        import socket as socket_mod

        host = WorkerHost(idle_timeout_seconds=0.2).start()
        try:
            sock = socket_mod.create_connection(
                (host.host, host.port), timeout=5.0
            )
            sock.settimeout(5.0)
            try:
                assert sock.recv(1) == b""  # server closed on us
            finally:
                sock.close()
        finally:
            host.stop()

    def test_active_connection_outlives_the_timeout(self):
        import time as time_mod

        host = WorkerHost(idle_timeout_seconds=0.3).start()
        try:
            conn = HostConnection(host.address)
            conn.connect()
            try:
                for _ in range(3):
                    time_mod.sleep(0.15)
                    conn.ping()  # traffic resets the idle clock
            finally:
                conn.close()
        finally:
            host.stop()


class SleepyIdentityOracle:
    """Identity with a fixed delay, so queue depth is observable."""

    def __init__(self, delay=0.01):
        self.delay = delay

    def __call__(self, segment):
        import time as time_mod

        time_mod.sleep(self.delay)
        return list(segment)


def _single_segment_batches(count):
    encoded = [encode_segment(seg) for seg in _segments(count)]
    return [
        (i, 1, pack_segments_payload(1, i, [encoded[i]])) for i in range(count)
    ]


class TestWorkStealing:
    def test_dry_dispatcher_steals_from_deep_peer(self):
        """A capacity-1 host that drains its small dealt share must
        steal from the capacity-6 host's deep queue instead of idling —
        and the round still returns complete, in order."""
        with local_cluster(2, capacities=[6, 1]) as hosts:
            pool = SocketHostPool(hosts)
            try:
                pool.register(SleepyIdentityOracle(0.01), 1)
                results = pool.run_round(_single_segment_batches(18))
                assert [len(blobs) for blobs in results] == [1] * 18
                assert sum(pool.host_segments.values()) == 18
                assert pool.steals >= 1
                # the shallow host ended up serving more than its deal
                assert pool.host_segments[hosts[1]] > 0
            finally:
                pool.close()

    def test_single_host_round_has_nothing_to_steal(self):
        with local_cluster(1, capacities=[4]) as hosts:
            pool = SocketHostPool(hosts)
            try:
                pool.register(IdentityOracle(), 1)
                assert len(pool.run_round(_single_segment_batches(8))) == 8
                assert pool.steals == 0
            finally:
                pool.close()


class TestElasticMembership:
    def test_add_host_joins_the_next_round(self):
        with local_cluster(2) as hosts:
            pool = SocketHostPool([hosts[0]])
            try:
                pool.register(SleepyIdentityOracle(0.005), 1)
                assert pool.add_host(hosts[1]) is True
                assert pool.hosts == [hosts[0], hosts[1]]
                results = pool.run_round(_single_segment_batches(12))
                assert len(results) == 12
                assert sum(pool.host_segments.values()) == 12
                # the joined host was dealt (or stole) real work
                assert pool.host_segments[hosts[1]] > 0
            finally:
                pool.close()

    def test_add_unreachable_host_reports_false_but_stays(self):
        with local_cluster(1) as hosts:
            pool = SocketHostPool(hosts, connect_timeout=0.2)
            try:
                pool.register(IdentityOracle(), 1)
                assert pool.add_host("127.0.0.1:1") is False
                assert "127.0.0.1:1" in pool.hosts
                # the dead member does not block the live one
                assert len(pool.run_round(_single_segment_batches(4))) == 4
            finally:
                pool.close()

    def test_remove_host_retires_it_from_dispatch(self):
        with local_cluster(2) as hosts:
            pool = SocketHostPool(hosts)
            try:
                pool.register(IdentityOracle(), 1)
                assert pool.remove_host(hosts[1]) is True
                assert pool.hosts == [hosts[0]]
                results = pool.run_round(_single_segment_batches(6))
                assert len(results) == 6
                assert pool.host_segments[hosts[1]] == 0
                assert pool.remove_host(hosts[1]) is False
            finally:
                pool.close()


class TestCapacityZeroAdvertisement:
    def test_zero_capacity_peer_is_treated_as_one(self, caplog):
        """A peer advertising capacity 0 (hostile or buggy — the stock
        WorkerHost refuses the configuration) must neither divide the
        weighted deal by zero nor starve its dispatcher."""
        import logging

        with local_cluster(2) as hosts:
            pool = SocketHostPool(hosts)
            try:
                pool.register(IdentityOracle(), 1)
                for conn in pool._snapshot():
                    if conn.address == hosts[1]:
                        conn.capacity = 0
                with caplog.at_level(
                    logging.WARNING, logger="repro.parallel.dist"
                ):
                    results = pool.run_round(_single_segment_batches(8))
                assert [len(blobs) for blobs in results] == [1] * 8
                assert any(
                    "advertises capacity 0" in record.getMessage()
                    for record in caplog.records
                )
            finally:
                pool.close()


class TestCacheClient:
    def test_dead_cache_degrades_to_misses_with_backoff(self):
        from repro.parallel import CacheClient

        client = CacheClient(
            "127.0.0.1:1", connect_timeout=0.2, retry_seconds=30.0
        )
        try:
            packed = [b"\x00" * 16, b"\x01" * 16]
            assert client.lookup(b"ns", packed) == [None, None]
            assert client.errors == 1
            assert client.store(b"ns", [(packed[0], b"v")]) is False
            # the backoff window absorbed the second attempt: no new
            # connect timeout was paid, no new error counted
            assert client.errors == 1
        finally:
            client.close()

    def test_empty_batch_is_free(self):
        from repro.parallel import CacheClient

        client = CacheClient("127.0.0.1:1", connect_timeout=0.2)
        try:
            assert client.lookup(b"ns", []) == []
            assert client.store(b"ns", []) is True
            assert client.errors == 0
        finally:
            client.close()

    def test_non_cache_server_reads_as_miss(self):
        """A CACHE_LOOKUP sent to a plain worker host draws a typed
        BAD_FRAME refusal — which the client absorbs as misses, because
        the cache tier degrades, it never fails a batch."""
        from repro.parallel import CacheClient

        host = WorkerHost().start()
        try:
            client = CacheClient(host.address)
            try:
                assert client.lookup(b"ns", [b"\x00" * 16]) == [None]
                assert client.errors == 1
            finally:
                client.close()
        finally:
            host.stop()

    def test_auth_refusal_raises_for_the_caller(self):
        from repro.parallel import AuthenticationError, CacheClient

        host = WorkerHost(auth_token="s3cret").start()
        try:
            client = CacheClient(host.address)  # no token presented
            try:
                with pytest.raises(AuthenticationError):
                    client.lookup(b"ns", [b"\x00" * 16])
            finally:
                client.close()
        finally:
            host.stop()


class TestWorkerClusterCache:
    def test_worker_disables_cache_on_auth_refusal_and_still_serves(self):
        """A worker pointed at a cache tier that refuses its token must
        not fail batches: it permanently disables the tier (a bad token
        fails identically forever) and serves from its own oracle."""
        cache_tier = WorkerHost(auth_token="right-token").start()
        try:
            worker = WorkerHost(cache_address=cache_tier.address).start()
            try:
                pool = SocketHostPool([worker.address])
                try:
                    pool.register(IdentityOracle(), 1)
                    results = pool.run_round(_single_segment_batches(4))
                    assert [len(blobs) for blobs in results] == [1] * 4
                finally:
                    pool.close()
                assert worker.cache_errors >= 1
                assert worker._cache is None  # permanently disabled
            finally:
                worker.stop()
        finally:
            cache_tier.stop()
