"""Tests for list-scheduling makespan computation."""

import pytest
from hypothesis import given, strategies as st

from repro.parallel import (
    adaptive_chunksize,
    greedy_makespan,
    ideal_makespan,
    lpt_makespan,
)

DURATIONS = st.lists(st.floats(0.0, 10.0, allow_nan=False), max_size=40)
WORKERS = st.integers(1, 16)


class TestKnownCases:
    def test_empty(self):
        assert greedy_makespan([], 4) == 0.0
        assert ideal_makespan([], 4) == 0.0

    def test_single_worker_is_serial(self):
        assert greedy_makespan([1, 2, 3], 1) == 6.0

    def test_enough_workers_is_max(self):
        assert greedy_makespan([1, 2, 3], 3) == 3.0

    def test_two_workers(self):
        # arrival order: w1 gets 3 (busy to 3), w2 gets 2 (busy to 2),
        # then 2 goes to w2 (busy to 4)
        assert greedy_makespan([3, 2, 2], 2) == 4.0

    def test_lpt_at_least_as_good(self):
        durations = [5, 4, 3, 3, 3]
        assert lpt_makespan(durations, 2) <= greedy_makespan(durations, 2)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            greedy_makespan([-1.0], 2)

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            greedy_makespan([1.0], 0)


class TestBounds:
    @given(DURATIONS, WORKERS)
    def test_greedy_between_ideal_and_serial(self, durations, workers):
        serial = sum(durations)
        greedy = greedy_makespan(durations, workers)
        ideal = ideal_makespan(durations, workers)
        assert ideal <= greedy + 1e-9
        assert greedy <= serial + 1e-9

    @given(DURATIONS, WORKERS)
    def test_graham_two_approximation(self, durations, workers):
        # Graham's bound: greedy <= (2 - 1/p) * optimal <= 2 * ideal
        greedy = greedy_makespan(durations, workers)
        ideal = ideal_makespan(durations, workers)
        assert greedy <= 2 * ideal + 1e-9

    @given(DURATIONS)
    def test_one_worker_exact(self, durations):
        assert greedy_makespan(durations, 1) == pytest.approx(sum(durations))

    @given(DURATIONS, WORKERS)
    def test_more_workers_never_hurts(self, durations, workers):
        assert greedy_makespan(durations, workers + 1) <= (
            greedy_makespan(durations, workers) + 1e-9
        )


class TestAdaptiveChunksize:
    def test_unknown_task_time_uses_balance_chunk(self):
        # seed policy: ~4 chunks per worker
        assert adaptive_chunksize(160, 4, 0.0) == 10

    def test_long_tasks_keep_small_chunks(self):
        # 100ms oracle calls amortize dispatch on their own
        assert adaptive_chunksize(160, 4, 0.1) == 10

    def test_short_tasks_get_bigger_chunks(self):
        # microsecond tasks must be batched to amortize IPC
        small = adaptive_chunksize(1000, 4, 1e-6)
        assert small > adaptive_chunksize(1000, 4, 1e-2)

    def test_never_exceeds_items_per_worker(self):
        # batching must not idle workers
        for est in (0.0, 1e-6, 1e-3, 1.0):
            assert adaptive_chunksize(8, 4, est) <= 2

    def test_at_least_one(self):
        assert adaptive_chunksize(0, 4, 0.0) == 1
        assert adaptive_chunksize(1, 8, 1.0) == 1

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            adaptive_chunksize(10, 0, 0.0)

    @given(
        st.integers(0, 5000),
        st.integers(1, 64),
        st.floats(0.0, 10.0, allow_nan=False),
    )
    def test_always_positive_and_bounded(self, items, workers, est):
        chunk = adaptive_chunksize(items, workers, est)
        assert chunk >= 1
        if items > 0:
            assert chunk <= -(-items // workers) or chunk == 1


class TestBatchSegments:
    def test_empty(self):
        from repro.parallel import batch_segments

        assert batch_segments(0, 4, 0.0) == []

    @given(st.integers(1, 500), WORKERS, st.floats(0.0, 1.0, allow_nan=False))
    def test_partition_covers_range_contiguously(self, n, workers, est):
        from repro.parallel import batch_segments

        batches = batch_segments(n, workers, est)
        assert batches[0][0] == 0
        assert batches[-1][1] == n
        for (_, prev_end), (start, end) in zip(batches, batches[1:]):
            assert start == prev_end
            assert end > start

    @given(st.integers(1, 500), WORKERS)
    def test_widths_match_adaptive_chunksize(self, n, workers):
        from repro.parallel import batch_segments

        est = 1e-5
        width = adaptive_chunksize(n, workers, est)
        batches = batch_segments(n, workers, est)
        assert all(end - start == width for start, end in batches[:-1])
        assert batches[-1][1] - batches[-1][0] <= width

    def test_cheap_segments_coalesce(self):
        from repro.parallel import batch_segments

        # 100 sub-50us segments at 4 workers: dispatch count drops by
        # ~an order of magnitude vs one task per segment
        batches = batch_segments(100, 4, 5e-5)
        assert len(batches) <= 10

    def test_expensive_segments_stay_spread(self):
        from repro.parallel import batch_segments

        # 100ms oracle calls amortize dispatch on their own; keep
        # chunks_per_worker batches per worker for balance
        batches = batch_segments(100, 4, 0.1)
        assert len(batches) >= 10
