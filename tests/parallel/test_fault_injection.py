"""Fault injection across the oracle transports.

A networked or multi-process transport meets failure before it meets
scale: workers die mid-round, connections half-close mid-frame, shared
memory runs out.  Every scenario here must end in one of exactly two
ways — recovery with a byte-identical result, or a *typed* error the
driver can catch — and must never corrupt a result, leak a
shared-memory arena (asserted against ``/dev/shm`` like the shm
lifecycle suite) or leave a dangling socket.
"""

import errno
import os
import socket
import threading
import time

import pytest

from repro.circuits import CNOT, H, RZ, X
from repro.oracles import IdentityOracle, NamOracle
from repro.parallel import (
    HAVE_SHM,
    ProcessMap,
    WorkerHost,
    WorkerUnavailableError,
    local_cluster,
)
from repro.parallel import shm as shm_mod
from repro.parallel.dist import (
    FRAME_PING,
    FRAME_PONG,
    FRAME_REGISTER,
    FRAME_REGISTER_OK,
    FRAME_RESULTS,
    FRAME_SEGMENTS,
    FrameReader,
    pack_frame,
    recv_frame,
)

SHM_DIR = "/dev/shm"
HAVE_SHM_DIR = os.path.isdir(SHM_DIR)


def _shm_entries() -> set:
    return set(os.listdir(SHM_DIR)) if HAVE_SHM_DIR else set()


def _segments(count=8):
    return [[H(0), H(0), X(1), CNOT(0, 1)] for _ in range(count)]


class CrashingOracle:
    """Kills its worker process outright (a crash, not an exception)."""

    def __call__(self, segment):
        os._exit(13)


class SlowIdentityOracle:
    """Identity with a delay, so a round is reliably in flight when a
    fault is injected."""

    def __init__(self, delay=0.03):
        self.delay = delay

    def __call__(self, segment):
        time.sleep(self.delay)
        return list(segment)


class GrowingOracle:
    """Returns a strictly larger (still equivalent) segment — the
    result-arena overflow case, where the reply cannot fit the
    parent-reserved region and must fall back to the pipe."""

    def __call__(self, segment):
        grown = list(segment)
        for _ in range(4):
            grown.extend([RZ(0, 0.25), RZ(0, -0.25), X(1), X(1)])
        return grown


# -- process transports: worker killed mid-round -------------------------------


@pytest.mark.parametrize(
    "transport",
    ["encoded", pytest.param("shm", marks=pytest.mark.skipif(
        not HAVE_SHM, reason="no shared_memory here"))],
)
def test_worker_killed_mid_round_raises_then_recovers(transport):
    """A worker crash fails the round with the pool's typed error; the
    *next* round must rebuild the pool and produce a byte-identical
    result — a crash costs one round, not the executor."""
    from concurrent.futures.process import BrokenProcessPool

    before = _shm_entries()
    pm = ProcessMap(2, serial_cutoff=0, transport=transport)
    try:
        with pytest.raises(BrokenProcessPool):
            pm.map_segments(CrashingOracle(), _segments())
        oracle = NamOracle()
        want = [oracle(list(seg)) for seg in _segments()]
        got = pm.map_segments(oracle, _segments())
        assert [list(res) for res in got] == want
    finally:
        pm.close()
    assert _shm_entries() - before == set()


def test_generic_map_recovers_after_crash():
    """The plain ``map`` path heals from a broken pool the same way."""
    from concurrent.futures.process import BrokenProcessPool

    pm = ProcessMap(2, serial_cutoff=0)
    try:
        with pytest.raises(BrokenProcessPool):
            pm.map(os._exit, [7, 7, 7, 7])
        assert pm.map(abs, [-1, -2, -3, -4]) == [1, 2, 3, 4]
    finally:
        pm.close()


# -- shm transport: arena exhaustion and result overflow -----------------------


@pytest.mark.skipif(not HAVE_SHM, reason="no shared_memory here")
def test_arena_exhaustion_raises_cleanly_and_recovers(monkeypatch):
    """When /dev/shm has no room the round fails with the OS error —
    never a corrupt result — nothing leaks, and the executor works
    again once memory is available."""
    before = _shm_entries()
    pm = ProcessMap(2, serial_cutoff=0, transport="shm")
    real_shared_memory = shm_mod._shared_memory

    class ExhaustedSharedMemory:
        """Stands in for multiprocessing.shared_memory: every create
        fails the way a full /dev/shm does."""

        @staticmethod
        def SharedMemory(*args, **kwargs):
            if kwargs.get("create"):
                raise OSError(errno.ENOSPC, "No space left on device")
            return real_shared_memory.SharedMemory(*args, **kwargs)

    try:
        monkeypatch.setattr(shm_mod, "_shared_memory", ExhaustedSharedMemory)
        with pytest.raises(OSError, match="No space left"):
            pm.map_segments(NamOracle(), _segments())
        assert _shm_entries() - before == set()

        monkeypatch.setattr(shm_mod, "_shared_memory", real_shared_memory)
        oracle = NamOracle()
        want = [oracle(list(seg)) for seg in _segments()]
        got = pm.map_segments(oracle, _segments())
        assert [list(res) for res in got] == want
    finally:
        pm.close()
    assert _shm_entries() - before == set()


@pytest.mark.skipif(not HAVE_SHM, reason="no shared_memory here")
def test_exhaustion_between_acquires_returns_first_block(monkeypatch):
    """ENOSPC on the *second* arena of a round must hand the first
    block back to the ring instead of stranding it."""
    pm = ProcessMap(2, serial_cutoff=0, transport="shm")
    try:
        pm.map_segments(NamOracle(), _segments())  # populate the ring
        pool = pm._arenas
        free_before = len(pool._free)
        calls = {"n": 0}
        real_acquire = pool.acquire

        def second_acquire_fails(nbytes):
            calls["n"] += 1
            if calls["n"] == 2:
                raise OSError(errno.ENOSPC, "No space left on device")
            return real_acquire(nbytes)

        monkeypatch.setattr(pool, "acquire", second_acquire_fails)
        with pytest.raises(OSError, match="No space left"):
            pm.map_segments(NamOracle(), _segments())
        assert len(pool._free) == free_before  # first block returned
    finally:
        pm.close()


@pytest.mark.skipif(not HAVE_SHM, reason="no shared_memory here")
def test_result_overflow_falls_back_to_pipe_byte_identically():
    """An oracle that grows its segment past the reserved result region
    must still return exactly its output (via the pipe fallback)."""
    oracle = GrowingOracle()
    want = [oracle(list(seg)) for seg in _segments()]
    pm = ProcessMap(2, serial_cutoff=0, transport="shm")
    try:
        got = pm.map_segments(oracle, _segments())
        assert [list(res) for res in got] == want
    finally:
        pm.close()


# -- socket transport: hosts dying, torn frames, total outage ------------------


def test_host_killed_mid_round_requeues_to_survivor():
    """Stopping one of two hosts mid-round must requeue its batches to
    the survivor and still produce a byte-identical result."""
    oracle = SlowIdentityOracle()
    segments = _segments(20)
    want = [list(seg) for seg in segments]
    h1, h2 = WorkerHost().start(), WorkerHost().start()
    pm = ProcessMap(serial_cutoff=0, transport="socket",
                    hosts=[h1.address, h2.address])
    try:
        killer = threading.Timer(0.08, h2.stop)
        killer.start()
        got = pm.map_segments(oracle, segments)
        killer.join()
        assert [list(res) for res in got] == want
        # the survivor keeps serving subsequent rounds
        got = pm.map_segments(oracle, segments)
        assert [list(res) for res in got] == want
    finally:
        pm.close()
        h1.stop()
        h2.stop()
    assert pm._socket_pool is None  # close() dropped the registry


def test_all_hosts_down_is_a_typed_error_then_recovers():
    """Losing every host fails the round with WorkerUnavailableError;
    once a host returns on the same port, the next round reconnects,
    re-registers the oracle, and completes byte-identically."""
    oracle = IdentityOracle()
    segments = _segments(10)
    host = WorkerHost().start()
    port = host.port
    pm = ProcessMap(serial_cutoff=0, transport="socket", hosts=[host.address])
    try:
        assert [list(r) for r in pm.map_segments(oracle, segments)] == segments
        host.stop()
        with pytest.raises(WorkerUnavailableError, match="unreachable"):
            pm.map_segments(oracle, segments)
        host = WorkerHost(port=port).start()  # same address, new process-alike
        got = pm.map_segments(oracle, segments)
        assert [list(res) for res in got] == segments
        assert pm.socket_reconnects >= 1
    finally:
        pm.close()
        host.stop()


class TornResultServer:
    """A worker impostor that speaks the protocol until the first
    segment batch, then sends *half* a RESULTS frame and drops the
    connection — the torn-frame fault a flaky network produces.

    ``delay`` holds the batch in flight before tearing it, so the
    other host can drain the rest of the queue first — the exact
    interleaving where a dispatcher that treats "queue empty" as "round
    over" would strand the requeued batch.
    """

    def __init__(self, delay: float = 0.0):
        self.delay = delay
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.address = "127.0.0.1:%d" % self._listener.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        from repro.parallel.dist import ConnectionClosedError

        conn, _ = self._listener.accept()
        self._listener.close()  # one victim is enough; reconnects are refused
        reader = FrameReader()
        try:
            while True:
                frame_type, payload = recv_frame(conn, reader)
                if frame_type == FRAME_REGISTER:
                    conn.sendall(pack_frame(FRAME_REGISTER_OK, payload[:8]))
                elif frame_type == FRAME_PING:
                    conn.sendall(pack_frame(FRAME_PONG))
                elif frame_type == FRAME_SEGMENTS:
                    if self.delay:
                        time.sleep(self.delay)
                    torn = pack_frame(FRAME_RESULTS, b"\x00" * 64)
                    conn.sendall(torn[: len(torn) // 2])
                    break
        except (ConnectionClosedError, OSError):
            pass  # client hung up before sending work: nothing to tear
        finally:
            conn.close()

    def stop(self):
        self._thread.join(timeout=2.0)


def test_half_closed_connection_mid_frame_requeues_to_good_host():
    """A half-delivered result frame must be treated as a host failure
    (typed, requeued), never parsed as a short result."""
    torn = TornResultServer()
    good = WorkerHost().start()
    oracle = IdentityOracle()
    segments = _segments(12)
    pm = ProcessMap(serial_cutoff=0, transport="socket",
                    hosts=[torn.address, good.address])
    try:
        got = pm.map_segments(oracle, segments)
        assert [list(res) for res in got] == segments
        assert good.segments_served == len(segments)  # good host did it all
    finally:
        pm.close()
        torn.stop()
        good.stop()


def test_requeued_batch_after_queue_drained_is_not_stranded():
    """Regression: the good host drains the whole queue while the torn
    host still holds one batch in flight; when that batch is requeued
    the idle dispatcher must pick it up instead of having already
    declared the round over (which surfaced as a spurious
    WorkerUnavailableError with a healthy host attached)."""
    torn = TornResultServer(delay=0.25)
    good = WorkerHost().start()
    oracle = IdentityOracle()
    segments = _segments(12)
    pm = ProcessMap(serial_cutoff=0, transport="socket",
                    hosts=[torn.address, good.address])
    try:
        got = pm.map_segments(oracle, segments)
        assert [list(res) for res in got] == segments
        assert good.segments_served == len(segments)
    finally:
        pm.close()
        torn.stop()
        good.stop()


def test_no_dangling_sockets_after_close():
    """close() must close every client connection, and stop() every
    worker-side connection."""
    with local_cluster(2) as hosts:
        pm = ProcessMap(serial_cutoff=0, transport="socket", hosts=hosts)
        pm.map_segments(IdentityOracle(), _segments())
        pool = pm._socket_pool
        conns = list(pool._conns)
        assert all(conn.connected for conn in conns)
        pm.close()
        assert all(not conn.connected for conn in conns)


def test_worker_host_closes_connections_on_stop():
    host = WorkerHost().start()
    pm = ProcessMap(serial_cutoff=0, transport="socket", hosts=[host.address])
    try:
        pm.map_segments(IdentityOracle(), _segments())
        assert len(host._conns) == 1
    finally:
        pm.close()
        host.stop()
    assert host._conns == []
    for thread in host._conn_threads:
        assert not thread.is_alive()


class BusyServiceImpostor:
    """A ``popqc serve`` impostor that answers every JOB with BUSY
    (optionally torn) — the pathological overload case the client's
    retry budget must bound."""

    def __init__(self, torn: bool = False):
        self.torn = torn
        self.jobs_seen = 0
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.address = "127.0.0.1:%d" % self._listener.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        from repro.parallel.dist import (
            BUSY_MAX_ACTIVE,
            FRAME_BUSY,
            FRAME_JOB,
            ConnectionClosedError,
            pack_busy_payload,
        )

        conn, _ = self._listener.accept()
        self._listener.close()
        reader = FrameReader()
        try:
            while True:
                frame_type, _payload = recv_frame(conn, reader)
                if frame_type != FRAME_JOB:
                    continue
                self.jobs_seen += 1
                payload = pack_busy_payload(BUSY_MAX_ACTIVE, 0.01, "always busy")
                if self.torn:
                    payload = payload[:2]  # shorter than the BUSY header
                conn.sendall(pack_frame(FRAME_BUSY, payload))
        except (ConnectionClosedError, OSError):
            pass
        finally:
            conn.close()

    def stop(self):
        self._thread.join(timeout=2.0)


def test_auth_refusal_is_not_absorbed_by_host_failover():
    """A wrong worker token must surface as AuthenticationError — the
    reconnect/requeue machinery treats host failures as transient, but
    a bad secret fails identically everywhere and retrying it forever
    would just hammer the host."""
    from repro.parallel import AuthenticationError, SocketHostPool

    host = WorkerHost(auth_token="right").start()
    try:
        pool = SocketHostPool([host.address], auth_token="wrong")
        try:
            with pytest.raises(AuthenticationError):
                pool.register(IdentityOracle(), 1)
        finally:
            pool.close()
    finally:
        host.stop()


def test_busy_flood_exhausts_client_retry_budget():
    """Against a server that is *always* busy, the client's bounded
    backoff gives up with a typed error after exactly its budget —
    never an unbounded retry storm."""
    from repro.circuits import Circuit
    from repro.service import ServiceBusyError, ServiceClient

    impostor = BusyServiceImpostor()
    client = ServiceClient(
        impostor.address,
        busy_retries=3,
        busy_backoff_seconds=0.001,
        busy_backoff_max_seconds=0.002,
    )
    try:
        with pytest.raises(ServiceBusyError, match="after 3 retries"):
            client.optimize(Circuit([H(0)], 1), omega=8)
        assert client.busy_rejections == 4  # 1 attempt + 3 retries
        assert impostor.jobs_seen == 4
    finally:
        client.close()
        impostor.stop()


def test_torn_busy_payload_is_a_typed_protocol_error():
    from repro.circuits import Circuit
    from repro.parallel.dist import FrameProtocolError
    from repro.service import ServiceClient

    impostor = BusyServiceImpostor(torn=True)
    client = ServiceClient(impostor.address, busy_retries=3)
    try:
        with pytest.raises(FrameProtocolError, match="BUSY payload"):
            client.optimize(Circuit([H(0)], 1), omega=8)
    finally:
        client.close()
        impostor.stop()


# -- socket transport: elastic fleet and cluster cache faults ------------------


def test_host_killed_mid_steal_drains_through_survivor():
    """Killing the capacity-6 host that holds most of the round must
    requeue its batches where the capacity-1 survivor *steals* them —
    the round completes and the steal counter proves the path ran."""
    from repro.circuits.encoding import encode_segment
    from repro.parallel import SocketHostPool
    from repro.parallel.dist import pack_segments_payload

    deep = WorkerHost(capacity=6).start()
    survivor = WorkerHost(capacity=1).start()
    pool = SocketHostPool([deep.address, survivor.address])
    try:
        pool.register(SlowIdentityOracle(0.03), 1)
        encoded = [encode_segment(seg) for seg in _segments(16)]
        batches = [
            (i, 1, pack_segments_payload(1, i, [encoded[i]]))
            for i in range(16)
        ]
        killer = threading.Timer(0.08, deep.stop)
        killer.start()
        results = pool.run_round(batches)
        killer.join()
        assert [len(blobs) for blobs in results] == [1] * 16
        assert pool.steals >= 1
    finally:
        pool.close()
        deep.stop()
        survivor.stop()


def test_host_killed_mid_steal_is_byte_identical_through_the_executor():
    """The same fault through ProcessMap: the skewed fleet loses its
    deep host mid-round and the result must still be byte-identical."""
    oracle = SlowIdentityOracle()
    segments = _segments(20)
    want = [list(seg) for seg in segments]
    deep = WorkerHost(capacity=6).start()
    survivor = WorkerHost(capacity=1).start()
    pm = ProcessMap(
        serial_cutoff=0,
        transport="socket",
        hosts=[deep.address, survivor.address],
    )
    try:
        killer = threading.Timer(0.08, deep.stop)
        killer.start()
        got = pm.map_segments(oracle, segments)
        killer.join()
        assert [list(res) for res in got] == want
    finally:
        pm.close()
        deep.stop()
        survivor.stop()


class TornCacheServer:
    """A cache-tier impostor: answers the first CACHE_LOOKUP with a
    CACHE_RESULT whose payload is garbage, and tears the connection
    mid-frame on the second."""

    def __init__(self):
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.address = "127.0.0.1:%d" % self._listener.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        import struct

        from repro.parallel.dist import (
            FRAME_CACHE_LOOKUP,
            FRAME_CACHE_RESULT,
            ConnectionClosedError,
        )

        conn, _ = self._listener.accept()
        reader = FrameReader()
        lookups = 0
        try:
            while True:
                frame_type, _payload = recv_frame(conn, reader)
                if frame_type != FRAME_CACHE_LOOKUP:
                    continue
                lookups += 1
                if lookups == 1:
                    # a VALID frame around an untrustworthy payload:
                    # count claims 2 entries, the bytes are garbage
                    garbage = struct.pack("<Q", 2) + b"\xff" * 24
                    conn.sendall(pack_frame(FRAME_CACHE_RESULT, garbage))
                else:
                    torn = pack_frame(FRAME_CACHE_RESULT, b"\x00" * 64)
                    conn.sendall(torn[: len(torn) // 2])
                    break
        except (ConnectionClosedError, OSError):
            pass
        finally:
            conn.close()
            self._listener.close()

    def stop(self):
        self._thread.join(timeout=2.0)


def test_torn_cache_result_reads_as_misses_never_raises():
    """Both tiers of CACHE_RESULT damage — garbage inside a valid
    frame, and a frame torn mid-stream — must come back as misses."""
    from repro.parallel import CacheClient

    torn = TornCacheServer()
    client = CacheClient(torn.address, connect_timeout=2.0, retry_seconds=0.0)
    try:
        packed = [b"\x00" * 16, b"\x01" * 16]
        # garbage payload: lenient unpack yields only misses
        assert client.lookup(b"ns", packed) == [None, None]
        assert client.hits == 0
        # torn frame: transport failure, absorbed as misses
        assert client.lookup(b"ns", packed) == [None, None]
        assert client.errors >= 1
    finally:
        client.close()
        torn.stop()


def test_worker_with_dead_cache_tier_is_byte_identical():
    """A worker whose --cache endpoint is down must serve every batch
    from its own oracle — same bytes, no exception, errors counted."""
    oracle = IdentityOracle()
    segments = _segments(8)
    worker = WorkerHost(cache_address="127.0.0.1:1").start()
    pm = ProcessMap(serial_cutoff=0, transport="socket", hosts=[worker.address])
    try:
        got = pm.map_segments(oracle, segments)
        assert [list(res) for res in got] == segments
        assert worker.cache_errors >= 1
        assert worker.cache_hits == 0
    finally:
        pm.close()
        worker.stop()
