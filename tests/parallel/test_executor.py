"""Tests for the parmap executors."""

import pickle

import pytest

from repro.parallel import ProcessMap, SerialMap, ThreadMap, default_workers


def square(x: int) -> int:
    return x * x


class TestSerialMap:
    def test_order_preserved(self):
        assert SerialMap().map(square, [3, 1, 2]) == [9, 1, 4]

    def test_empty(self):
        assert SerialMap().map(square, []) == []

    def test_workers_is_one(self):
        assert SerialMap().workers == 1

    def test_close_noop(self):
        SerialMap().close()


class TestThreadMap:
    def test_order_preserved(self):
        tm = ThreadMap(4)
        try:
            assert tm.map(square, list(range(20))) == [i * i for i in range(20)]
        finally:
            tm.close()

    def test_single_item_serial_path(self):
        tm = ThreadMap(4)
        assert tm.map(square, [5]) == [25]
        tm.close()

    def test_pool_reused_across_calls(self):
        tm = ThreadMap(2)
        try:
            tm.map(square, [1, 2, 3])
            pool = tm._pool
            tm.map(square, [4, 5, 6])
            assert tm._pool is pool
        finally:
            tm.close()

    def test_close_and_reopen(self):
        tm = ThreadMap(2)
        tm.map(square, [1, 2, 3])
        tm.close()
        assert tm._pool is None
        assert tm.map(square, [1, 2, 3]) == [1, 4, 9]
        tm.close()

    def test_default_worker_count(self):
        tm = ThreadMap()
        assert tm.workers == default_workers()
        tm.close()


class TestProcessMap:
    def test_small_batches_run_serial(self):
        pm = ProcessMap(2, serial_cutoff=4)
        try:
            # below cutoff: no pool is spawned
            assert pm.map(square, [1, 2]) == [1, 4]
            assert pm._pool is None
        finally:
            pm.close()

    def test_parallel_path(self):
        pm = ProcessMap(2, serial_cutoff=1)
        try:
            assert pm.map(square, list(range(10))) == [i * i for i in range(10)]
        finally:
            pm.close()

    def test_picklable_oracle_roundtrip(self):
        # the actual POPQC use case: a NamOracle crossing process bounds
        from repro.circuits import H
        from repro.core.popqc import _OracleTask
        from repro.oracles import NamOracle

        task = _OracleTask(NamOracle())
        clone = pickle.loads(pickle.dumps(task))
        assert clone([H(0), H(0)]) == []


def test_default_workers_positive():
    assert default_workers() >= 1
