"""Tests for the parmap executors."""

import pickle

import pytest

from repro.parallel import ProcessMap, SerialMap, ThreadMap, default_workers


def square(x: int) -> int:
    return x * x


class TestSerialMap:
    def test_order_preserved(self):
        assert SerialMap().map(square, [3, 1, 2]) == [9, 1, 4]

    def test_empty(self):
        assert SerialMap().map(square, []) == []

    def test_workers_is_one(self):
        assert SerialMap().workers == 1

    def test_close_noop(self):
        SerialMap().close()


class TestThreadMap:
    def test_order_preserved(self):
        tm = ThreadMap(4)
        try:
            assert tm.map(square, list(range(20))) == [i * i for i in range(20)]
        finally:
            tm.close()

    def test_single_item_serial_path(self):
        tm = ThreadMap(4)
        assert tm.map(square, [5]) == [25]
        tm.close()

    def test_pool_reused_across_calls(self):
        tm = ThreadMap(2)
        try:
            tm.map(square, [1, 2, 3])
            pool = tm._pool
            tm.map(square, [4, 5, 6])
            assert tm._pool is pool
        finally:
            tm.close()

    def test_close_and_reopen(self):
        tm = ThreadMap(2)
        tm.map(square, [1, 2, 3])
        tm.close()
        assert tm._pool is None
        assert tm.map(square, [1, 2, 3]) == [1, 4, 9]
        tm.close()

    def test_default_worker_count(self):
        tm = ThreadMap()
        assert tm.workers == default_workers()
        tm.close()


class TestProcessMap:
    def test_small_batches_run_serial(self):
        pm = ProcessMap(2, serial_cutoff=4)
        try:
            # below cutoff: no pool is spawned
            assert pm.map(square, [1, 2]) == [1, 4]
            assert pm._pool is None
        finally:
            pm.close()

    def test_parallel_path(self):
        pm = ProcessMap(2, serial_cutoff=1)
        try:
            assert pm.map(square, list(range(10))) == [i * i for i in range(10)]
        finally:
            pm.close()

    def test_picklable_oracle_roundtrip(self):
        # the actual POPQC use case: a NamOracle crossing process bounds
        from repro.circuits import H
        from repro.core.popqc import _OracleTask
        from repro.oracles import NamOracle

        task = _OracleTask(NamOracle())
        clone = pickle.loads(pickle.dumps(task))
        assert clone([H(0), H(0)]) == []

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError):
            ProcessMap(2, transport="grpc")


class TestMapSegments:
    """The persistent-worker oracle transport."""

    def _segments(self, count=6):
        from repro.circuits import CNOT, H, X

        return [[H(0), H(0), X(1), CNOT(0, 1)] for _ in range(count)]

    def test_small_batch_runs_inline(self):
        from repro.oracles import NamOracle

        pm = ProcessMap(2, serial_cutoff=8)
        try:
            out = pm.map_segments(NamOracle(), self._segments(3))
            assert pm._pool is None  # never escalated to processes
        finally:
            pm.close()
        assert all(len(seg) < 4 for seg in out)

    @pytest.mark.parametrize("transport", ["encoded", "pickle"])
    def test_matches_serial_oracle(self, transport):
        from repro.oracles import NamOracle

        oracle = NamOracle()
        segments = self._segments(8)
        want = [oracle(list(seg)) for seg in segments]
        pm = ProcessMap(2, serial_cutoff=0, transport=transport)
        try:
            assert pm.map_segments(oracle, segments) == want
        finally:
            pm.close()

    def test_oracle_registered_once_per_pool(self):
        from repro.oracles import NamOracle

        oracle = NamOracle()
        pm = ProcessMap(2, serial_cutoff=0)
        try:
            pm.map_segments(oracle, self._segments())
            pool = pm._pool
            pm.map_segments(oracle, self._segments())
            assert pm._pool is pool  # same workers, no re-registration
            assert pm._registered_oracle is oracle
        finally:
            pm.close()

    def test_swapping_oracle_rebuilds_pool(self):
        from repro.oracles import IdentityOracle, NamOracle

        pm = ProcessMap(2, serial_cutoff=0)
        try:
            pm.map_segments(NamOracle(), self._segments())
            pool = pm._pool
            out = pm.map_segments(IdentityOracle(), self._segments())
            assert pm._pool is not pool
            assert out == self._segments()  # identity oracle is a no-op
        finally:
            pm.close()

    @pytest.mark.parametrize("transport", ["encoded", "shm"])
    def test_swapping_oracle_bumps_generation(self, transport):
        # regression: a swapped oracle must never be served by workers
        # registered for the previous one.  The pool rebuild plus the
        # per-task generation token make that structurally impossible.
        from repro.oracles import IdentityOracle, NamOracle

        pm = ProcessMap(2, serial_cutoff=0, transport=transport)
        try:
            pm.map_segments(NamOracle(), self._segments())
            gen_a = pm._oracle_generation
            out = pm.map_segments(IdentityOracle(), self._segments())
            assert pm._oracle_generation > gen_a
            assert out == self._segments()  # the *new* oracle's results
        finally:
            pm.close()

    def test_stale_generation_rejected_worker_side(self):
        # simulate a worker whose initializer registered generation 1
        # receiving a task tagged for generation 2 (the failure mode the
        # token exists to catch: without it the worker would silently
        # apply the stale oracle)
        from repro.circuits import encode_segment
        from repro.circuits.encoding import unpack_segment_from
        from repro.oracles import IdentityOracle
        from repro.parallel import StaleOracleError
        from repro.parallel import executor as executor_mod

        executor_mod._register_worker_oracle(IdentityOracle(), 1)
        try:
            encoded = encode_segment(self._segments(1)[0])
            # the worker replies in the flat wire format (lazy decode)
            payload = executor_mod._apply_registered_oracle(1, encoded)
            assert isinstance(payload, bytes)
            roundtripped, _ = unpack_segment_from(payload)
            assert roundtripped == encoded
            with pytest.raises(StaleOracleError, match="generation 2"):
                executor_mod._apply_registered_oracle(2, encoded)
        finally:
            executor_mod._register_worker_oracle(None, -1)

    def test_serialization_time_tracked(self):
        from repro.oracles import NamOracle

        pm = ProcessMap(2, serial_cutoff=0)
        try:
            pm.map_segments(NamOracle(), self._segments(8))
            assert pm.last_serialization_time > 0.0
            assert pm.serialization_time >= pm.last_serialization_time
        finally:
            pm.close()


class TestThreadsTransport:
    """The in-process thread-pool oracle transport."""

    def _segments(self, count=6):
        from repro.circuits import CNOT, H, X

        return [[H(0), H(0), X(1), CNOT(0, 1)] for _ in range(count)]

    def test_matches_serial_oracle(self):
        from repro.oracles import NamOracle

        oracle = NamOracle()
        segments = self._segments(8)
        want = [oracle(list(seg)) for seg in segments]
        pm = ProcessMap(2, serial_cutoff=0, transport="threads")
        try:
            assert pm.map_segments(oracle, segments) == want
        finally:
            pm.close()

    def test_no_process_pool_spawned(self):
        from repro.oracles import NamOracle

        pm = ProcessMap(2, serial_cutoff=0, transport="threads")
        try:
            pm.map_segments(NamOracle(), self._segments(8))
            assert pm._pool is None  # no process pool, only threads
            assert pm._thread_pool is not None
        finally:
            pm.close()
        assert pm._thread_pool is None  # close() shut the thread pool

    def test_thread_pool_reused_across_rounds(self):
        from repro.oracles import NamOracle

        pm = ProcessMap(2, serial_cutoff=0, transport="threads")
        try:
            pm.map_segments(NamOracle(), self._segments(8))
            pool = pm._thread_pool
            pm.map_segments(NamOracle(), self._segments(8))
            assert pm._thread_pool is pool
        finally:
            pm.close()

    def test_packed_native_oracle_returns_lazy_results(self):
        from repro.oracles import NamOracle
        from repro.parallel import LazySegmentResult

        oracle = NamOracle(engine="vector")
        pm = ProcessMap(2, serial_cutoff=0, transport="threads")
        try:
            out = pm.map_segments(oracle, self._segments(8))
            assert all(isinstance(r, LazySegmentResult) for r in out)
            assert all(not r.decoded for r in out)  # still packed
            assert pm.results_returned == 8
            assert pm.results_decoded == 0
            # reading the gates decodes, once
            assert out[0] == oracle(self._segments(1)[0])
            assert pm.results_decoded == 1
        finally:
            pm.close()

    def test_gate_list_oracle_skips_encoding(self):
        from repro.oracles import NamOracle

        pm = ProcessMap(2, serial_cutoff=0, transport="threads")
        try:
            pm.map_segments(NamOracle(), self._segments(8))
            # no packed bytes exist for a plain gate-list oracle
            assert pm.results_returned == 0
            assert pm.last_serialization_time == 0.0
            assert pm.thread_wall_seconds > 0.0
            assert pm.thread_task_seconds > 0.0
        finally:
            pm.close()


def test_default_workers_positive():
    assert default_workers() >= 1
