"""Tests for the simulated-parallelism executor."""


import pytest

from repro.parallel import SimulatedParallelism, greedy_makespan


def make_fake_timer(durations):
    """A timer replaying ``durations``: the executor reads the clock twice
    per task (start and end), so ticks advance by each duration within a
    task and by zero between tasks."""
    ticks = [0.0]
    for d in durations:
        ticks.append(ticks[-1] + d)  # end of task
        ticks.append(ticks[-1])  # start of next task
    it = iter(ticks)
    return lambda: next(it)


class TestAccounting:
    def test_serial_and_simulated_elapsed(self):
        durations = [1.0, 2.0, 3.0, 4.0]
        pmap = SimulatedParallelism(2, timer=make_fake_timer(durations))
        out = pmap.map(lambda x: x, list(range(4)))
        assert out == [0, 1, 2, 3]
        assert pmap.serial_elapsed == pytest.approx(10.0)
        assert pmap.simulated_elapsed == pytest.approx(greedy_makespan(durations, 2))

    def test_round_log(self):
        pmap = SimulatedParallelism(4, timer=make_fake_timer([1.0, 1.0]))
        pmap.map(lambda x: x, [1, 2])
        assert len(pmap.round_log) == 1
        count, serial, makespan = pmap.round_log[0]
        assert count == 2
        assert serial == pytest.approx(2.0)
        assert makespan == pytest.approx(1.0)

    def test_speedup_property(self):
        pmap = SimulatedParallelism(2, timer=make_fake_timer([1.0] * 4))
        pmap.map(lambda x: x, list(range(4)))
        assert pmap.speedup == pytest.approx(2.0)

    def test_speedup_with_no_work(self):
        assert SimulatedParallelism(4).speedup == 1.0

    def test_reset(self):
        pmap = SimulatedParallelism(2, timer=make_fake_timer([1.0]))
        pmap.map(lambda x: x, [1])
        pmap.reset()
        assert pmap.simulated_elapsed == 0.0
        assert pmap.round_log == []

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            SimulatedParallelism(0)


class TestMakespanFor:
    def test_requires_recording(self):
        pmap = SimulatedParallelism(2)
        with pytest.raises(ValueError):
            pmap.makespan_for(4)

    def test_recomputes_any_worker_count(self):
        durations = [3.0, 1.0, 1.0, 1.0]
        pmap = SimulatedParallelism(
            1, timer=make_fake_timer(durations), record_durations=True
        )
        pmap.map(lambda x: x, list(range(4)))
        assert pmap.makespan_for(1) == pytest.approx(6.0)
        assert pmap.makespan_for(2) == pytest.approx(greedy_makespan(durations, 2))
        assert pmap.makespan_for(100) == pytest.approx(3.0)

    def test_accumulates_over_rounds(self):
        pmap = SimulatedParallelism(
            1, timer=make_fake_timer([1.0, 1.0, 2.0, 2.0]), record_durations=True
        )
        pmap.map(lambda x: x, [1, 2])
        pmap.map(lambda x: x, [3, 4])
        assert pmap.makespan_for(2) == pytest.approx(1.0 + 2.0)


class TestRealClock:
    def test_orders_results_and_measures(self):
        pmap = SimulatedParallelism(8)
        out = pmap.map(lambda x: x * 2, list(range(10)))
        assert out == [0, 2, 4, 6, 8, 10, 12, 14, 16, 18]
        assert pmap.simulated_elapsed <= pmap.serial_elapsed + 1e-9
