"""Cross-executor equivalence: every transport yields the same result.

POPQC's output must be a pure function of (circuit, oracle, Ω) no
matter which executor or wire format carried the segments.  This suite
runs a fixed set of seeded circuits through SerialMap, ThreadMap and
ProcessMap with all five transports — encoded, shm, threads, pickle,
and socket (against a localhost worker cluster) — and requires
byte-identical optimized circuits plus identical round/oracle
accounting.  The socket transport additionally gets the lazy-decode
spy pin of ``tests/parallel/test_lazy_decode.py``: results crossing a
TCP wire must stay packed until a rewrite is actually accepted.
"""

import pytest

from repro.circuits import encoding, random_redundant_circuit, to_qasm
from repro.core import popqc
from repro.oracles import IdentityOracle, NamOracle
from repro.parallel import ProcessMap, SerialMap, ThreadMap, local_cluster

OMEGA = 16

SUITE = [
    random_redundant_circuit(5, 300, seed=101, redundancy=0.6),
    random_redundant_circuit(7, 300, seed=202, redundancy=0.3),
    random_redundant_circuit(4, 250, seed=303, redundancy=0.8),
]


def _run_suite(parmap, **popqc_kwargs):
    oracle = NamOracle()
    try:
        return [popqc(c, oracle, OMEGA, parmap=parmap, **popqc_kwargs) for c in SUITE]
    finally:
        parmap.close()


@pytest.fixture(scope="module")
def serial_results():
    return _run_suite(SerialMap())


@pytest.fixture(scope="module")
def socket_hosts():
    """A localhost two-worker cluster for the socket transport."""
    with local_cluster(2) as hosts:
        yield hosts


@pytest.mark.parametrize(
    "make_parmap,kwargs",
    [
        (lambda: ThreadMap(2), {}),
        (lambda: ProcessMap(2, serial_cutoff=0, transport="encoded"), {}),
        (lambda: ProcessMap(2, serial_cutoff=0, transport="shm"), {}),
        (lambda: ProcessMap(2, serial_cutoff=0, transport="threads"), {}),
        (lambda: ProcessMap(2, serial_cutoff=0, transport="pickle"), {}),
        (
            lambda: ProcessMap(2, serial_cutoff=0),
            {"transport": "pickle"},  # legacy driver path over pmap.map
        ),
    ],
    ids=[
        "thread",
        "process-encoded",
        "process-shm",
        "process-threads",
        "process-pickle",
        "process-legacy-map",
    ],
)
def test_executors_match_serial(serial_results, make_parmap, kwargs):
    results = _run_suite(make_parmap(), **kwargs)
    for got, want in zip(results, serial_results):
        # byte-identical circuits ...
        assert got.circuit.gates == want.circuit.gates
        assert to_qasm(got.circuit) == to_qasm(want.circuit)
        # ... and identical optimization dynamics
        assert got.stats.rounds == want.stats.rounds
        assert got.stats.oracle_calls == want.stats.oracle_calls
        assert got.stats.oracle_accepted == want.stats.oracle_accepted


def test_socket_executor_matches_serial(serial_results, socket_hosts):
    """The fifth transport: packed bytes over TCP must reproduce the
    serial result byte for byte, completing the five-way matrix."""
    results = _run_suite(
        ProcessMap(2, serial_cutoff=0, transport="socket", hosts=socket_hosts)
    )
    for got, want in zip(results, serial_results):
        assert got.circuit.gates == want.circuit.gates
        assert to_qasm(got.circuit) == to_qasm(want.circuit)
        assert got.stats.rounds == want.stats.rounds
        assert got.stats.oracle_calls == want.stats.oracle_calls
        assert got.stats.oracle_accepted == want.stats.oracle_accepted


def test_socket_transport_recorded_in_stats(socket_hosts):
    pm = ProcessMap(2, serial_cutoff=0, transport="socket", hosts=socket_hosts)
    results = _run_suite(pm)
    assert all(r.stats.transport == "socket" for r in results)
    # wire accounting flows into the run stats ...
    assert all(r.stats.socket_bytes_sent > 0 for r in results)
    assert all(r.stats.socket_bytes_received > 0 for r in results)
    assert all(r.stats.socket_reconnects == 0 for r in results)
    # ... including per-host throughput over the cluster
    for r in results:
        assert sum(h["segments"] for h in r.stats.socket_hosts.values()) > 0
    assert all(r.stats.batch_dispatches > 0 for r in results)


def test_socket_results_stay_lazy(socket_hosts, monkeypatch):
    """Spy pin (mirroring tests/parallel/test_lazy_decode.py): a fully
    rejecting run over the socket transport must never unpack a single
    result in the driver — `len()` comes from the packed header even
    when the bytes crossed a TCP wire."""
    calls = {"unpack": 0, "decode": 0}
    real_unpack = encoding.unpack_segment_from
    real_decode = encoding.decode_segment

    def spy_unpack(*args, **kwargs):
        calls["unpack"] += 1
        return real_unpack(*args, **kwargs)

    def spy_decode(*args, **kwargs):
        calls["decode"] += 1
        return real_decode(*args, **kwargs)

    monkeypatch.setattr(encoding, "unpack_segment_from", spy_unpack)
    monkeypatch.setattr(encoding, "decode_segment", spy_decode)
    pm = ProcessMap(2, serial_cutoff=0, transport="socket", hosts=socket_hosts)
    try:
        res = popqc(SUITE[0], IdentityOracle(), OMEGA, parmap=pm)
    finally:
        pm.close()
    assert res.stats.oracle_accepted == 0
    assert res.stats.results_returned > 0
    assert res.stats.results_decoded == 0
    assert res.stats.skipped_decode_bytes > 0
    assert calls["unpack"] == 0
    assert calls["decode"] == 0
    assert list(res.circuit.gates) == list(SUITE[0].gates)


def test_transport_recorded_in_stats(serial_results):
    assert all(r.stats.transport == "inline" for r in serial_results)
    pm = ProcessMap(2, serial_cutoff=0)
    results = _run_suite(pm)
    assert all(r.stats.transport == "encoded" for r in results)
    assert all(r.stats.serialization_time >= 0.0 for r in results)


def test_shm_transport_recorded_in_stats():
    pm = ProcessMap(2, serial_cutoff=0, transport="shm")
    results = _run_suite(pm)
    assert all(r.stats.transport == "shm" for r in results)
    # batched dispatch + arena accounting flow into the run stats
    assert all(r.stats.batch_dispatches > 0 for r in results)
    assert all(r.stats.mean_batch_size >= 1.0 for r in results)
    assert all(r.stats.shm_arena_bytes > 0 for r in results)
    # the second and third runs recycle the first run's arena ring
    assert results[-1].stats.arena_reuse_rate > 0.5


def test_threads_transport_recorded_in_stats():
    pm = ProcessMap(2, serial_cutoff=0, transport="threads")
    results = _run_suite(pm)
    assert all(r.stats.transport == "threads" for r in results)
    # per-task and wall accounting flow into the run stats ...
    assert all(r.stats.thread_wall_seconds > 0.0 for r in results)
    assert all(r.stats.thread_task_seconds > 0.0 for r in results)
    assert all(0.0 <= r.stats.gil_release_fraction <= 1.0 for r in results)
    # ... and lazy-decode accounting reports what was skipped (a plain
    # gate-list oracle on threads has no bytes to skip, so use stats
    # only where defined)
    assert all(r.stats.decode_skip_fraction >= 0.0 for r in results)


def test_threads_equivalence_with_vector_oracle():
    """threads + the packed-native vector oracle == pickle + the same
    oracle, byte for byte (the acceptance pin for the threads wire)."""
    oracle = NamOracle(engine="vector")
    want = [popqc(c, oracle, OMEGA) for c in SUITE]
    for transport in ("pickle", "threads"):
        pm = ProcessMap(2, serial_cutoff=0, transport=transport)
        try:
            got = [popqc(c, oracle, OMEGA, parmap=pm) for c in SUITE]
        finally:
            pm.close()
        for g, w in zip(got, want):
            assert g.circuit.gates == w.circuit.gates
            assert to_qasm(g.circuit) == to_qasm(w.circuit)
            assert g.stats.rounds == w.stats.rounds
    # the packed-native path reports skipped decodes on threads
    pm = ProcessMap(2, serial_cutoff=0, transport="threads")
    try:
        res = popqc(SUITE[0], oracle, OMEGA, parmap=pm)
    finally:
        pm.close()
    assert res.stats.results_returned > 0


@pytest.mark.parametrize("transport", ["auto", "pickle"])
def test_inline_fallback_reported_when_nothing_dispatched(transport):
    # a round never exceeding serial_cutoff stays in the parent, and the
    # stats must say so instead of claiming a wire format was used
    pm = ProcessMap(2, serial_cutoff=10_000)
    try:
        res = popqc(SUITE[0], NamOracle(), OMEGA, parmap=pm, transport=transport)
    finally:
        pm.close()
    assert res.stats.transport == "inline"
    assert res.stats.serialization_time == 0.0


def test_encoded_request_conflicts_with_pickle_executor():
    pm = ProcessMap(2, transport="pickle")
    try:
        with pytest.raises(ValueError, match="conflicts"):
            popqc(SUITE[0], NamOracle(), OMEGA, parmap=pm, transport="encoded")
    finally:
        pm.close()


def test_encoded_transport_requires_capable_executor():
    with pytest.raises(ValueError, match="map_segments"):
        popqc(SUITE[0], NamOracle(), OMEGA, parmap=SerialMap(), transport="encoded")


def test_unknown_transport_rejected():
    with pytest.raises(ValueError, match="unknown transport"):
        popqc(SUITE[0], NamOracle(), OMEGA, transport="zeromq")
