"""Smoke + shape tests for the figure drivers (tiny workloads)."""

import pytest

from repro.experiments import (
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure7,
    run_figure8,
    run_figure9,
)

FAMS = ["HHL", "VQE"]


class TestFigure3:
    def test_speedup_monotone_in_workers(self):
        curves, text = run_figure3(
            families=FAMS, size_index=0, workers=(1, 2, 8, 64)
        )
        assert "Figure 3" in text
        for c in curves:
            assert c.speedups[0] == pytest.approx(1.0, abs=0.05)
            for a, b in zip(c.speedups, c.speedups[1:]):
                assert b >= a - 0.05  # non-decreasing within noise


class TestFigure4:
    def test_rounds_reported(self):
        points, text = run_figure4(families=FAMS, small_index=0, large_index=1)
        assert "Figure 4" in text
        for p in points:
            assert p.rounds_small >= 1
            assert p.gates_large > p.gates_small


class TestFigure5:
    def test_speedup_points(self):
        points, text = run_figure5(families=FAMS, size_indices=(0,), workers=16)
        assert "Figure 5" in text
        for p in points:
            assert p.speedup >= 0.9


class TestFigure6:
    def test_depth_aware_beats_gate_cost_on_depth(self):
        rows, text = run_figure6(families=["VQE"], size_indices=(0,), omega=20)
        assert "Figure 6" in text
        (r,) = rows
        # mixed cost optimizes depth at least as well as gate-count cost
        assert r.mixed_cost_depth_reduction >= r.gate_cost_depth_reduction - 0.05


class TestFigure7:
    def test_linear_oracle_calls(self):
        points, text = run_figure7(families=["VQE"], size_indices=(0, 1))
        assert "Figure 7" in text
        small, large = points
        ratio_calls = large.oracle_calls / max(1, small.oracle_calls)
        ratio_gates = large.gates / small.gates
        # oracle calls grow roughly linearly with size (Lemma 2)
        assert ratio_calls < 3.5 * ratio_gates


class TestFigure8:
    def test_oracle_dominates(self):
        points, text = run_figure8(families=FAMS, size_indices=(0,))
        assert "Figure 8" in text
        for p in points:
            # paper: >90% at scale; allow slack at tiny sizes
            assert p.oracle_fraction > 0.5


class TestFigure9:
    def test_omega_sweep(self):
        points, text = run_figure9(
            families=["VQE"], size_index=0, omegas=(10, 40, 160)
        )
        assert "Figure 9" in text
        assert [p.omega for p in points] == [10, 40, 160]
        # quality is non-decreasing in omega (locality widens)
        reductions = [p.avg_reduction for p in points]
        assert reductions[-1] >= reductions[0] - 0.02
