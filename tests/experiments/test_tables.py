"""Smoke + shape tests for the table drivers (tiny workloads)."""

import math


from repro.experiments import run_table1, run_table2, run_table3, run_table4

TINY = dict(size_indices=(0,), families=["HHL", "VQE"])


class TestTable1:
    def test_rows_and_rendering(self):
        rows, text = run_table1(workers=8, **TINY)
        assert len(rows) == 2
        assert "Table 1" in text
        for r in rows:
            assert r.gates > 0
            assert 0 <= r.popqc_reduction <= 1
            assert r.popqc_time > 0
            assert not math.isnan(r.speedup)

    def test_quality_comparable_to_baseline(self):
        rows, _ = run_table1(workers=8, **TINY)
        for r in rows:
            # POPQC runs the same rules to a fixpoint: quality is within
            # a few points of (usually above) the single-sweep baseline
            assert r.popqc_reduction >= r.baseline_reduction - 0.05


class TestTable2:
    def test_rows(self):
        rows, text = run_table2(**TINY)
        assert len(rows) == 2
        assert "Table 2" in text
        for r in rows:
            assert r.popqc_time > 0 and r.baseline_time > 0


class TestTable3:
    def test_rows(self):
        rows, text = run_table3(**TINY)
        assert len(rows) == 2
        assert "Table 3" in text
        for r in rows:
            # both optimizers enforce local optimality with the same
            # oracle: quality must agree closely (paper: within 0.3%)
            assert abs(r.oac_reduction - r.popqc_reduction) < 0.05


class TestTable4:
    def test_rows(self):
        rows, text = run_table4(size_indices=(0,), families=["VQE"])
        assert len(rows) == 1
        assert "Table 4" in text
        r = rows[0]
        # orderings shift quality only slightly (paper: < 0.2% for most)
        spread = max(
            r.left_justified_reduction,
            r.right_justified_reduction,
            r.default_reduction,
        ) - min(
            r.left_justified_reduction,
            r.right_justified_reduction,
            r.default_reduction,
        )
        assert spread < 0.10


class TestTable1Timeout:
    def test_timeout_marks_na_rows(self):
        # a zero timeout forces every baseline row into the N.A. state
        rows, text = run_table1(
            size_indices=(0,), families=["VQE"], workers=8, baseline_timeout=0.0
        )
        (r,) = rows
        assert r.baseline_timed_out
        assert math.isnan(r.baseline_reduction)
        assert "N.A." in text

    def test_no_timeout_by_default(self):
        rows, _ = run_table1(size_indices=(0,), families=["VQE"], workers=8)
        assert not rows[0].baseline_timed_out
