"""Tests for table/series rendering and CSV export."""


from repro.experiments import format_series, format_table, to_csv_string, write_csv


class TestFormatTable:
    def test_headers_and_rows_aligned(self):
        text = format_table(["name", "value"], [["abc", 1.5], ["d", 22]])
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert "-+-" in lines[1]
        assert len(lines) == 4

    def test_title_prepended(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_nan_renders_as_na(self):
        text = format_table(["x"], [[float("nan")]])
        assert "N.A." in text

    def test_float_formats(self):
        text = format_table(["x"], [[12345.6], [42.0], [0.123456]])
        assert "12346" in text
        assert "42.0" in text
        assert "0.123" in text


class TestFormatSeries:
    def test_pairs_rendered(self):
        text = format_series("fig", [1, 2], [10.0, 20.0], "x", "y")
        assert "fig" in text
        assert text.count("\n") == 2


class TestCsv:
    def test_to_csv_string(self):
        s = to_csv_string(["a", "b"], [[1, 2], [3, 4]])
        assert s.splitlines()[0] == "a,b"
        assert s.splitlines()[2] == "3,4"

    def test_write_csv(self, tmp_path):
        path = str(tmp_path / "out.csv")
        write_csv(path, ["h"], [[5]])
        with open(path) as fh:
            assert fh.read().splitlines() == ["h", "5"]
