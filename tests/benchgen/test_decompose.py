"""Unitary verification of every decomposition in the shared library."""

import itertools
import math

import numpy as np
import pytest

from repro.benchgen import decompose as dec
from repro.sim import allclose_up_to_phase, gates_unitary


class TestSingleQubit:
    def test_z(self):
        assert allclose_up_to_phase(
            gates_unitary(dec.z(0), 1), np.diag([1, -1]).astype(complex)
        )

    def test_s_and_sdg_inverse(self):
        u = gates_unitary(dec.s(0) + dec.sdg(0), 1)
        assert allclose_up_to_phase(u, np.eye(2))

    def test_t_fourth_power_is_z(self):
        u = gates_unitary(dec.t(0) * 4, 1)
        assert allclose_up_to_phase(u, np.diag([1, -1]).astype(complex))

    @pytest.mark.parametrize("theta", [0.3, math.pi / 2, 1.7])
    def test_rx(self, theta):
        c, s = math.cos(theta / 2), math.sin(theta / 2)
        ref = np.array([[c, -1j * s], [-1j * s, c]])
        assert allclose_up_to_phase(gates_unitary(dec.rx(0, theta), 1), ref)

    @pytest.mark.parametrize("theta", [0.3, math.pi / 2, 1.7])
    def test_ry(self, theta):
        c, s = math.cos(theta / 2), math.sin(theta / 2)
        ref = np.array([[c, -s], [s, c]])
        assert allclose_up_to_phase(gates_unitary(dec.ry(0, theta), 1), ref)


class TestTwoQubit:
    def test_cz(self):
        ref = np.diag([1, 1, 1, -1]).astype(complex)
        assert allclose_up_to_phase(gates_unitary(dec.cz(0, 1), 2), ref)

    def test_cz_symmetric(self):
        a = gates_unitary(dec.cz(0, 1), 2)
        b = gates_unitary(dec.cz(1, 0), 2)
        assert allclose_up_to_phase(a, b)

    def test_swap(self):
        ref = np.eye(4)[[0, 2, 1, 3]].astype(complex)
        assert allclose_up_to_phase(gates_unitary(dec.swap(0, 1), 2), ref)

    @pytest.mark.parametrize("theta", [0.4, math.pi / 2, 2.5])
    def test_controlled_phase(self, theta):
        ref = np.diag([1, 1, 1, np.exp(1j * theta)])
        assert allclose_up_to_phase(
            gates_unitary(dec.controlled_phase(theta, 0, 1), 2), ref
        )

    def test_controlled_phase_control_roles(self):
        # CP is symmetric in control/target
        theta = 0.9
        a = gates_unitary(dec.controlled_phase(theta, 0, 1), 2)
        b = gates_unitary(dec.controlled_phase(theta, 1, 0), 2)
        assert allclose_up_to_phase(a, b)


class TestThreeQubit:
    def test_toffoli(self):
        ref = np.eye(8)
        ref[6:8, 6:8] = [[0, 1], [1, 0]]
        assert allclose_up_to_phase(
            gates_unitary(dec.toffoli(0, 1, 2), 3), ref.astype(complex)
        )

    def test_toffoli_gate_budget(self):
        assert len(dec.toffoli(0, 1, 2)) == 15

    def test_ccz(self):
        ref = np.diag([1, 1, 1, 1, 1, 1, 1, -1]).astype(complex)
        assert allclose_up_to_phase(gates_unitary(dec.ccz(0, 1, 2), 3), ref)

    def test_base_gate_set_only(self):
        names = {g.name for g in dec.toffoli(0, 1, 2)}
        assert names <= {"h", "x", "cnot", "rz"}


class TestMcx:
    def test_zero_controls_is_x(self):
        assert [g.name for g in dec.mcx([], 0, [])] == ["x"]

    def test_one_control_is_cnot(self):
        assert [g.name for g in dec.mcx([0], 1, [])] == ["cnot"]

    def test_two_controls_is_toffoli(self):
        assert len(dec.mcx([0, 1], 2, [])) == 15

    def test_insufficient_ancillas_rejected(self):
        with pytest.raises(ValueError):
            dec.mcx([0, 1, 2, 3], 4, [])

    @pytest.mark.parametrize("k", [3, 4])
    def test_truth_table(self, k):
        controls = list(range(k))
        target = k
        ancillas = list(range(k + 1, k + 1 + max(0, k - 2)))
        n = k + 1 + len(ancillas)
        u = gates_unitary(dec.mcx(controls, target, ancillas), n)
        for bits in itertools.product([0, 1], repeat=k + 1):
            idx = 0
            for q, b in enumerate(bits):
                idx |= b << (n - 1 - q)
            out = u[:, idx]
            expected = list(bits)
            if all(bits[:k]):
                expected[k] ^= 1
            eidx = 0
            for q, b in enumerate(expected):
                eidx |= b << (n - 1 - q)
            assert abs(out[eidx]) == pytest.approx(1.0, abs=1e-9)


class TestQft:
    def test_qft_with_swaps_is_dft(self):
        n = 3
        dim = 1 << n
        w = np.exp(2j * math.pi / dim)
        dft = np.array([[w ** (i * j) for j in range(dim)] for i in range(dim)])
        dft /= math.sqrt(dim)
        u = gates_unitary(dec.qft(list(range(n)), with_swaps=True), n)
        assert allclose_up_to_phase(u, dft)

    def test_qft_inverse_is_adjoint(self):
        n = 3
        u = gates_unitary(dec.qft(list(range(n))), n)
        ui = gates_unitary(dec.qft_inverse(list(range(n))), n)
        assert allclose_up_to_phase(ui, u.conj().T)

    def test_inverse_helper(self):
        gates = dec.toffoli(0, 1, 2)
        u = gates_unitary(gates + dec.inverse(gates), 3)
        assert allclose_up_to_phase(u, np.eye(8))
