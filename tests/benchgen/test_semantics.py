"""Semantic checks on small benchmark instances.

These tests run the generated circuits through the statevector
simulator and check the *algorithmic* property the circuit is supposed
to implement — the strongest evidence the generators build real
workloads rather than gate soup.
"""

import math

import numpy as np
import pytest

from repro.benchgen import grover, statevec
from repro.benchgen.grover import grover_total_qubits
from repro.circuits import Circuit
from repro.core import popqc
from repro.oracles import NamOracle
from repro.sim import circuits_equivalent, run


class TestGroverAmplifies:
    @pytest.mark.parametrize("n,seed", [(3, 0), (4, 1)])
    def test_marked_state_amplified(self, n, seed):
        c = grover(n, seed=seed)
        vec = run(c)
        total = grover_total_qubits(n)
        # marginal probability over the search register (ancillas are |0>)
        probs = np.abs(vec) ** 2
        probs = probs.reshape((1 << n, -1)).sum(axis=1)
        best = int(np.argmax(probs))
        # optimal-iteration Grover should put most weight on one state,
        # far above uniform 1/2^n
        assert probs[best] > 5.0 / (1 << n)

    def test_optimized_grover_same_distribution(self):
        c = grover(3, seed=2)
        res = popqc(c, NamOracle(), 20)
        a = np.abs(run(c)) ** 2
        b = np.abs(run(res.circuit, num_qubits=c.num_qubits)) ** 2
        assert np.allclose(a, b, atol=1e-7)


class TestStateVecNormalized:
    def test_produces_valid_state(self):
        c = statevec(3, reps=1, seed=0)
        vec = run(c)
        assert np.sum(np.abs(vec) ** 2) == pytest.approx(1.0)

    def test_prep_unprep_near_identity(self):
        # reps blocks are prepare(state) then unprepare(perturbed state);
        # with a tiny perturbation the net state stays close to |0...0>
        c = statevec(3, reps=1, seed=1)
        vec = run(c)
        assert abs(vec[0]) ** 2 > 0.9


def _random_product_state_probe(
    a: Circuit, b: Circuit, trials: int = 3, seed: int = 0
) -> bool:
    """Compare two circuits on random product input states.

    Cheaper than a full unitary for wider circuits: each probe costs one
    statevector simulation.  Product inputs distinguish inequivalent
    unitaries with overwhelming probability.
    """
    import random

    from repro.circuits import H as _H, RZ as _RZ
    from repro.sim import statevectors_equivalent

    n = max(a.num_qubits, b.num_qubits)
    rng = random.Random(seed)
    for _ in range(trials):
        prep = []
        for q in range(n):
            if rng.random() < 0.5:
                prep.append(_H(q))
            prep.append(_RZ(q, rng.uniform(0, 2 * math.pi)))
            if rng.random() < 0.5:
                prep.append(_H(q))
        va = run(list(prep) + list(a.gates), num_qubits=n)
        vb = run(list(prep) + list(b.gates), num_qubits=n)
        if not statevectors_equivalent(va, vb):
            return False
    return True


class TestOptimizationPreservesBenchmarks:
    """End-to-end: POPQC output equivalent to input for every family
    at simulable sizes."""

    @pytest.mark.parametrize(
        "build",
        [
            lambda: grover(3, iterations=1, seed=0),
            lambda: statevec(3, reps=1, seed=0),
        ],
        ids=["grover", "statevec"],
    )
    def test_equivalence(self, build):
        c = build()
        res = popqc(c, NamOracle(), 15)
        assert circuits_equivalent(c, res.circuit)

    @pytest.mark.parametrize(
        "build",
        [
            lambda: __import__("repro.benchgen", fromlist=["bwt"]).bwt(5, steps=2),
            lambda: __import__("repro.benchgen", fromlist=["hhl"]).hhl(6),
            lambda: __import__("repro.benchgen", fromlist=["shor"]).shor(8),
            lambda: __import__("repro.benchgen", fromlist=["sqrt_circuit"]).sqrt_circuit(8),
            lambda: __import__("repro.benchgen", fromlist=["vqe"]).vqe(5, layers=1),
            lambda: __import__("repro.benchgen", fromlist=["boolsat"]).boolsat(
                3, iterations=1
            ),
        ],
        ids=["bwt", "hhl", "shor", "sqrt", "vqe", "boolsat"],
    )
    def test_statevector_probe_equivalence(self, build):
        c = build()
        res = popqc(c, NamOracle(), 25)
        assert res.circuit.num_gates <= c.num_gates
        assert _random_product_state_probe(c, res.circuit, trials=2, seed=1)
