"""Structural tests for the eight benchmark families."""

import pytest

from repro.benchgen import (
    FAMILIES,
    boolsat,
    bwt,
    family_names,
    generate,
    generate_params,
    grover,
    hhl,
    shor,
    sqrt_circuit,
    statevec,
    vqe,
)
from repro.circuits import GATE_NAMES

BASE = set(GATE_NAMES)


class TestRegistry:
    def test_eight_families_in_paper_order(self):
        assert family_names() == [
            "BoolSat",
            "BWT",
            "Grover",
            "HHL",
            "Shor",
            "Sqrt",
            "StateVec",
            "VQE",
        ]

    def test_paper_metadata_recorded(self):
        for fam in FAMILIES.values():
            assert len(fam.paper_qubits) == 4
            assert len(fam.default_params) == 4
            assert 0 < fam.paper_reduction < 1

    def test_size_index_validation(self):
        with pytest.raises(ValueError):
            generate("Grover", 4)

    def test_unknown_family(self):
        with pytest.raises(KeyError):
            generate("Nope", 0)

    @pytest.mark.parametrize("fam", family_names())
    def test_smallest_instances_build(self, fam):
        c = generate(fam, 0)
        assert c.num_gates > 100
        assert set(g.name for g in c.gates) <= BASE

    @pytest.mark.parametrize("fam", family_names())
    def test_sizes_grow_monotonically(self, fam):
        # sizes 0 and 1 suffice to check growth without long builds
        a, b = generate(fam, 0), generate(fam, 1)
        assert b.num_gates > a.num_gates

    @pytest.mark.parametrize("fam", family_names())
    def test_deterministic_by_seed(self, fam):
        assert generate(fam, 0, seed=3).gates == generate(fam, 0, seed=3).gates

    def test_generate_params(self):
        c = generate_params("BWT", num_qubits=6, steps=5)
        assert c.num_qubits == 6


class TestIndividualGenerators:
    def test_grover_validation(self):
        with pytest.raises(ValueError):
            grover(1)

    def test_grover_iterations_scale(self):
        a = grover(5, iterations=2)
        b = grover(5, iterations=4)
        assert b.num_gates > a.num_gates

    def test_boolsat_validation(self):
        with pytest.raises(ValueError):
            boolsat(2)

    def test_bwt_validation(self):
        with pytest.raises(ValueError):
            bwt(3)

    def test_bwt_steps_scale(self):
        assert bwt(6, steps=10).num_gates < bwt(6, steps=20).num_gates

    def test_hhl_validation(self):
        with pytest.raises(ValueError):
            hhl(3)
        with pytest.raises(ValueError):
            hhl(6, depth=0)

    def test_hhl_has_adjoint_structure(self):
        c = hhl(6)
        # QPE + QPE^dagger means gate counts are nearly symmetric
        names = [g.name for g in c.gates]
        assert names.count("h") % 2 == 0 or names.count("h") > 0

    def test_shor_validation(self):
        with pytest.raises(ValueError):
            shor(4)
        with pytest.raises(ValueError):
            shor(8, passes=0)

    def test_sqrt_validation(self):
        with pytest.raises(ValueError):
            sqrt_circuit(4)
        with pytest.raises(ValueError):
            sqrt_circuit(8, rounds=0)

    def test_statevec_validation(self):
        with pytest.raises(ValueError):
            statevec(1)

    def test_statevec_exponential_scaling(self):
        a = statevec(4, reps=1)
        b = statevec(5, reps=1)
        # one more qubit roughly doubles the multiplexor sizes
        assert b.num_gates > 1.5 * a.num_gates

    def test_vqe_validation(self):
        with pytest.raises(ValueError):
            vqe(3)

    def test_vqe_layers_scale(self):
        assert vqe(6, layers=2).num_gates < vqe(6, layers=6).num_gates

    @pytest.mark.parametrize(
        "build",
        [
            lambda: grover(4, iterations=1),
            lambda: boolsat(4, iterations=1),
            lambda: bwt(5, steps=2),
            lambda: hhl(5),
            lambda: shor(6),
            lambda: sqrt_circuit(7),
            lambda: statevec(3),
            lambda: vqe(4, layers=1),
        ],
        ids=["grover", "boolsat", "bwt", "hhl", "shor", "sqrt", "statevec", "vqe"],
    )
    def test_gates_fit_declared_registers(self, build):
        c = build()
        assert all(q < c.num_qubits for g in c.gates for q in g.qubits)


class TestExplicitRng:
    """Every generator accepts an explicit RNG (no module-level
    randomness): ``rng=random.Random(s)`` reproduces ``seed=s``
    byte-for-byte, which is what makes load-harness traffic
    reproducible across processes and CI runs."""

    BUILDS = [
        ("grover", lambda **kw: grover(4, iterations=1, **kw)),
        ("boolsat", lambda **kw: boolsat(4, iterations=1, **kw)),
        ("bwt", lambda **kw: bwt(5, steps=2, **kw)),
        ("hhl", lambda **kw: hhl(5, **kw)),
        ("shor", lambda **kw: shor(6, **kw)),
        ("sqrt", lambda **kw: sqrt_circuit(7, **kw)),
        ("statevec", lambda **kw: statevec(3, **kw)),
        ("vqe", lambda **kw: vqe(4, layers=1, **kw)),
    ]

    @pytest.mark.parametrize(
        "build", [b for _, b in BUILDS], ids=[n for n, _ in BUILDS]
    )
    def test_rng_argument_reproduces_seed(self, build):
        import random

        for s in (0, 7):
            assert build(seed=s).gates == build(rng=random.Random(s)).gates

    @pytest.mark.parametrize("family", family_names())
    def test_registry_threads_rng_through(self, family):
        import random

        a = generate(family, 0, seed=11)
        b = generate(family, 0, rng=random.Random(11))
        assert a.gates == b.gates
        assert a.num_qubits == b.num_qubits

    def test_generate_params_accepts_rng(self):
        import random

        a = generate_params("Grover", num_search_qubits=4, iterations=2, seed=3)
        b = generate_params(
            "Grover", num_search_qubits=4, iterations=2, rng=random.Random(3)
        )
        assert a.gates == b.gates

    def test_same_rng_instance_is_consumed_statefully(self):
        """One shared RNG drawn from twice yields *different* instances
        — the property the load harness relies on to derive distinct
        circuits from one master stream."""
        import random

        master = random.Random(5)
        a = grover(4, iterations=1, rng=master)
        b = grover(4, iterations=1, rng=master)
        # same parameters, different draws -> (almost surely) different
        # marked states; equality here would mean the generator reseeds
        # internally and ignores the passed RNG's state
        assert a.gates != b.gates or master.getstate() != random.Random(5).getstate()
