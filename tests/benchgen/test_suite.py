"""Tests for the QASM suite exporter."""

import csv
import os

from repro.benchgen import write_suite
from repro.circuits import read_qasm


class TestWriteSuite:
    def test_files_and_manifest(self, tmp_path):
        out = str(tmp_path / "suite")
        entries = write_suite(out, families=["HHL", "VQE"], size_indices=(0,))
        assert len(entries) == 2
        for e in entries:
            assert os.path.exists(e.path)
        manifest = os.path.join(out, "manifest.csv")
        with open(manifest) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 2
        assert {r["family"] for r in rows} == {"HHL", "VQE"}

    def test_round_trip(self, tmp_path):
        out = str(tmp_path / "suite")
        (entry,) = write_suite(out, families=["Grover"], size_indices=(0,))
        circuit = read_qasm(entry.path)
        assert circuit.num_gates == entry.num_gates
        assert circuit.num_qubits == entry.num_qubits

    def test_metrics_recorded(self, tmp_path):
        out = str(tmp_path / "suite")
        (entry,) = write_suite(out, families=["VQE"], size_indices=(0,))
        assert entry.depth > 0
        assert entry.two_qubit_gates > 0
