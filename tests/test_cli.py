"""Tests for the ``popqc`` command-line interface."""

import pytest

from repro.circuits import Circuit, H, X, read_qasm, write_qasm
from repro.cli import main


@pytest.fixture
def qasm_file(tmp_path):
    path = str(tmp_path / "in.qasm")
    write_qasm(Circuit([H(0), H(0), X(1), X(1), H(2)], 3), path)
    return path


class TestOptimizeCommand:
    def test_optimizes_and_writes(self, qasm_file, tmp_path, capsys):
        out = str(tmp_path / "out.qasm")
        rc = main(["optimize", qasm_file, "-o", out, "--omega", "4"])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "reduction" in captured
        assert read_qasm(out).num_gates == 1

    def test_without_output(self, qasm_file, capsys):
        assert main(["optimize", qasm_file]) == 0
        assert "reduction" in capsys.readouterr().out

    def test_simulated_executor(self, qasm_file, capsys):
        rc = main(["optimize", qasm_file, "--executor", "simulated:8"])
        assert rc == 0

    def test_bad_executor(self, qasm_file):
        with pytest.raises(SystemExit):
            main(["optimize", qasm_file, "--executor", "gpu"])

    def test_process_executor_with_transport(self, qasm_file, capsys):
        for transport in ("encoded", "pickle"):
            rc = main(
                ["optimize", qasm_file, "--executor", "process:2",
                 "--transport", transport]
            )
            assert rc == 0
            assert "reduction" in capsys.readouterr().out

    def test_transport_rejected_for_non_process_executor(self, qasm_file):
        with pytest.raises(SystemExit, match="process executors"):
            main(["optimize", qasm_file, "--executor", "serial",
                  "--transport", "pickle"])

    def test_socket_transport_requires_hosts(self, qasm_file):
        with pytest.raises(SystemExit, match="--hosts"):
            main(["optimize", qasm_file, "--executor", "process:2",
                  "--transport", "socket"])

    def test_hosts_requires_socket_transport(self, qasm_file):
        with pytest.raises(SystemExit, match="--transport socket"):
            main(["optimize", qasm_file, "--executor", "process:2",
                  "--transport", "encoded", "--hosts", "127.0.0.1:9001"])

    def test_socket_transport_against_local_cluster(self, qasm_file, tmp_path,
                                                    capsys):
        from repro.parallel import local_cluster

        out = str(tmp_path / "out.qasm")
        with local_cluster(2) as hosts:
            rc = main(["optimize", qasm_file, "-o", out, "--omega", "4",
                       "--executor", "process:2", "--transport", "socket",
                       "--hosts", ",".join(hosts)])
        assert rc == 0
        assert "reduction" in capsys.readouterr().out
        assert read_qasm(out).num_gates == 1


class TestBenchCommand:
    def test_bench_runs(self, capsys):
        rc = main(["bench", "HHL", "--size", "0", "--omega", "50"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "HHL[0]" in out
        assert "popqc" in out

    def test_bench_with_baseline(self, capsys):
        rc = main(["bench", "VQE", "--size", "0", "--baseline"])
        assert rc == 0
        assert "baseline" in capsys.readouterr().out

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            main(["bench", "Nope"])


class TestBenchServeCommand:
    def test_print_schedule_is_byte_reproducible(self, capsys):
        assert main(["bench", "serve", "--print-schedule", "--smoke"]) == 0
        first = capsys.readouterr().out
        assert main(["bench", "serve", "--print-schedule", "--smoke"]) == 0
        assert capsys.readouterr().out == first

    def test_print_schedule_carries_digests(self, capsys):
        import json

        assert main(["bench", "serve", "--print-schedule", "--smoke"]) == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["schema"].startswith("popqc-bench-service-load")
        assert {"cold", "warm", "flood", "interactive"} <= set(
            manifest["mixes"]
        )
        assert all(
            job["digest"]
            for jobs in manifest["mixes"].values()
            for job in jobs
        )

    def test_seed_changes_schedule(self, capsys):
        assert main(
            ["bench", "serve", "--print-schedule", "--smoke", "--seed", "1"]
        ) == 0
        first = capsys.readouterr().out
        assert main(
            ["bench", "serve", "--print-schedule", "--smoke", "--seed", "2"]
        ) == 0
        assert capsys.readouterr().out != first

    def test_server_required_without_print_schedule(self, capsys):
        assert main(["bench", "serve"]) == 2
        assert "--server" in capsys.readouterr().err

    def test_load_run_against_in_process_server(self, tmp_path, capsys):
        from repro.oracles import NamOracle
        from repro.service import OptimizationService

        out = str(tmp_path / "BENCH_service_load.json")
        srv = OptimizationService(
            NamOracle(), workers=2, transport="threads"
        ).start()
        try:
            rc = main(
                [
                    "bench",
                    "serve",
                    "--server",
                    srv.address,
                    "--smoke",
                    "--time-scale",
                    "0.2",
                    "--out",
                    out,
                ]
            )
        finally:
            srv.stop()
        assert rc == 0
        printed = capsys.readouterr().out
        assert "warm p50 speedup vs cold" in printed
        import json

        record = json.loads(open(out).read())
        assert record["schema"] == "popqc-bench-service-load/v1"
        assert all(
            m["jobs_failed"] == 0 for m in record["mixes"].values()
        )


class TestTablesCommand:
    def test_single_table(self, capsys, monkeypatch):
        # trim the workload: patch the driver's defaults via argv sizes
        rc = main(["tables", "4", "--sizes", "0"])
        assert rc == 0
        assert "Table 4" in capsys.readouterr().out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


class TestAnalyzeCommand:
    def test_family_spec(self, capsys):
        assert main(["analyze", "VQE:0"]) == 0
        out = capsys.readouterr().out
        assert "qubits" in out and "T gates" in out

    def test_qasm_path(self, qasm_file, capsys):
        assert main(["analyze", qasm_file]) == 0
        assert "depth" in capsys.readouterr().out


class TestTraceCommand:
    def test_renders_rounds(self, capsys):
        assert main(["trace", "VQE:0", "--omega", "80", "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "round" in out and "reduction" in out


class TestSuiteCommand:
    def test_writes_qasm_and_manifest(self, tmp_path, capsys):
        out = str(tmp_path / "suite")
        rc = main(["suite", "--out", out, "--sizes", "0", "--families", "VQE"])
        assert rc == 0
        assert "manifest.csv" in capsys.readouterr().out
        import os

        assert os.path.exists(os.path.join(out, "manifest.csv"))
