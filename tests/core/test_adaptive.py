"""Tests for the adaptive-Ω heuristic (paper Section A.4 future work)."""

import pytest

from repro.circuits import Circuit, H, X, random_redundant_circuit
from repro.core import (
    popqc,
    popqc_adaptive,
    sliding_distances,
    suggest_omega,
)
from repro.oracles import NamOracle
from repro.sim import circuits_equivalent


class TestSlidingDistances:
    def test_empty(self):
        assert sliding_distances(Circuit([], 2)) == []

    def test_fully_serial_chain_has_no_slack(self):
        # every gate depends on the previous: ASAP == ALAP ordering
        c = Circuit([H(0), X(0), H(0), X(0)], 1)
        assert sliding_distances(c) == [0, 0, 0, 0]

    def test_independent_gates_can_slide(self):
        # H(1) has no dependencies: it can sit anywhere among the chain,
        # so its slide dominates the (small) positional shifts it causes
        c = Circuit([H(1), X(0), X(0), X(0), X(0)], 2)
        dists = sliding_distances(c)
        assert dists[0] == max(dists)
        assert dists[0] >= 3

    def test_lengths_match(self):
        c = random_redundant_circuit(4, 60, seed=1)
        assert len(sliding_distances(c)) == c.num_gates


class TestSuggestOmega:
    def test_clamped_to_bounds(self):
        c = Circuit([H(0), X(0)], 1)  # no slack at all
        p = suggest_omega(c, omega_min=50, omega_max=800)
        assert p.suggested_omega == 50

    def test_quantile_validation(self):
        c = Circuit([H(0)], 1)
        with pytest.raises(ValueError):
            suggest_omega(c, quantile=0.0)

    def test_empty_circuit(self):
        p = suggest_omega(Circuit([], 2))
        assert p.suggested_omega == 50
        assert p.max_distance == 0

    def test_slack_heavy_circuit_gets_larger_omega(self):
        # >5% of gates float freely against a long chain (the Sqrt
        # situation of Section A.4): slack shows up in the quantile
        floaters = [H(q + 1) for q in range(30)]
        chain = [X(0)] * 120
        slack_heavy = Circuit(floaters + chain, 31)
        narrow = Circuit([H(0), X(0)] * 200, 1)
        pw = suggest_omega(slack_heavy)
        pn = suggest_omega(narrow)
        assert pw.suggested_omega > pn.suggested_omega

    def test_profile_fields_consistent(self):
        c = random_redundant_circuit(4, 100, seed=2)
        p = suggest_omega(c)
        assert p.quantile_distance <= p.max_distance
        assert 0.0 <= p.fraction_over_omega <= 1.0
        assert 50 <= p.suggested_omega <= 800


class TestPopqcAdaptive:
    def test_equivalence_and_reduction(self):
        c = random_redundant_circuit(4, 150, seed=3, redundancy=0.7)
        res, profile = popqc_adaptive(c, NamOracle())
        assert circuits_equivalent(c, res.circuit)
        assert res.circuit.num_gates < c.num_gates
        assert profile.suggested_omega >= 50

    def test_matches_manual_omega(self):
        c = random_redundant_circuit(4, 120, seed=4)
        res_a, profile = popqc_adaptive(c, NamOracle())
        res_m = popqc(c, NamOracle(), profile.suggested_omega)
        assert res_a.circuit.gates == res_m.circuit.gates
