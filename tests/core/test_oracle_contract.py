"""Failure-injection tests: buggy oracles against validation mode.

The paper assumes the oracle returns an equivalent circuit.  These
tests inject oracles that violate the contract in different ways and
check that ``validate_oracle=True`` catches each one — and that the
honest oracle sails through.
"""

import pytest

from repro.circuits import Circuit, Gate, H, X, random_redundant_circuit
from repro.core import popqc
from repro.core.popqc import OracleContractViolation
from repro.oracles import NamOracle


class GateDroppingOracle:
    """Claims optimization by discarding the last gate — not equivalent."""

    def __call__(self, gates):
        gates = list(gates)
        if len(gates) >= 2:
            return gates[:-1]
        return gates


class WrongGateOracle:
    """Rewrites an H into an X: shorter nowhere, wrong everywhere."""

    def __call__(self, gates):
        gates = list(gates)
        for i, g in enumerate(gates):
            if g.name == "h":
                # replace H plus its neighbour by a single X: count drops
                out = gates[:i] + [X(g.qubits[0])] + gates[i + 2 :]
                if len(out) < len(gates):
                    return out
        return gates


class ForeignQubitOracle:
    """Moves work onto a qubit the segment never touched."""

    def __call__(self, gates):
        gates = list(gates)
        if len(gates) >= 2:
            return [Gate("h", (997,))] + gates[2:]
        return gates


class TestViolationsCaught:
    @pytest.mark.parametrize(
        "oracle_cls",
        [GateDroppingOracle, WrongGateOracle],
        ids=["drops-gate", "wrong-gate"],
    )
    def test_semantic_violations(self, oracle_cls):
        c = random_redundant_circuit(4, 60, seed=1)
        with pytest.raises(OracleContractViolation, match="not equivalent"):
            popqc(c, oracle_cls(), 8, validate_oracle=True)

    def test_foreign_qubit_violation(self):
        c = random_redundant_circuit(4, 60, seed=2)
        with pytest.raises(OracleContractViolation, match="outside the segment"):
            popqc(c, ForeignQubitOracle(), 8, validate_oracle=True)

    def test_without_validation_corruption_is_silent(self):
        # documents the trust assumption: no validation, no error
        c = random_redundant_circuit(4, 60, seed=3)
        res = popqc(c, GateDroppingOracle(), 8)
        assert res.circuit.num_gates < c.num_gates  # silently wrong


class TestHonestOraclePasses:
    def test_nam_oracle_validates_clean(self):
        c = random_redundant_circuit(4, 100, seed=4, redundancy=0.7)
        res = popqc(c, NamOracle(), 8, validate_oracle=True)
        assert res.circuit.num_gates < c.num_gates

    def test_wide_segments_fall_back_to_structural_check(self):
        # support wider than validation_max_qubits: only the structural
        # check runs; the honest oracle still passes
        gates = [H(q) for q in range(20)] + [H(q) for q in range(20)]
        c = Circuit(gates, 20)
        res = popqc(c, NamOracle(), 25, validate_oracle=True, validation_max_qubits=8)
        assert res.circuit.num_gates == 0
