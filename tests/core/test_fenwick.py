"""Tests for the Fenwick-tree alternative index structure."""

import pytest
from hypothesis import given, strategies as st

from repro.core import FenwickTree, IndexTree


class TestInterfaceParity:
    """FenwickTree must behave identically to IndexTree."""

    def test_basics(self):
        f = FenwickTree([1, 0, 1, 1])
        assert f.total == 3
        assert f.before(2) == 1
        assert f.select(1) == 2
        assert not f.is_live(1)

    def test_empty(self):
        f = FenwickTree([])
        assert f.total == 0 and len(f) == 0

    def test_bounds(self):
        f = FenwickTree([1, 1])
        with pytest.raises(IndexError):
            f.select(2)
        with pytest.raises(IndexError):
            f.before(3)

    def test_set_live(self):
        f = FenwickTree([1, 1, 1])
        f.set_live(1, False)
        assert f.total == 2 and f.select(1) == 2
        f.set_live(1, True)
        assert f.select(1) == 1

    def test_next_live(self):
        f = FenwickTree([0, 0, 1])
        assert f.next_live(0) == 2
        assert f.next_live(3) is None


@given(
    st.lists(st.integers(0, 1), min_size=1, max_size=48),
    st.lists(st.tuples(st.integers(0, 47), st.booleans()), max_size=24),
)
def test_fenwick_matches_index_tree(flags, updates):
    fen = FenwickTree(flags)
    tree = IndexTree(flags)
    for idx, live in updates:
        if idx < len(flags):
            fen.set_live(idx, live)
            tree.set_live(idx, live)
    assert fen.total == tree.total
    for i in range(len(flags) + 1):
        assert fen.before(i) == tree.before(i)
    for r in range(tree.total):
        assert fen.select(r) == tree.select(r)
    assert list(fen.live_indices()) == list(tree.live_indices())
