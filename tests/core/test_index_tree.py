"""Tests for the index tree (paper Section 3, Figure 1)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import IndexTree


class NaiveIndex:
    """Reference implementation: plain list of flags."""

    def __init__(self, flags):
        self.flags = list(flags)

    def before(self, i):
        return sum(self.flags[:i])

    def select(self, r):
        seen = 0
        for i, f in enumerate(self.flags):
            if f:
                if seen == r:
                    return i
                seen += 1
        raise IndexError(r)

    @property
    def total(self):
        return sum(self.flags)


class TestPaperFigure1:
    """The 5-gate example of Figure 1: H, X, CNOT, X, gate."""

    def test_initial_weights(self):
        tree = IndexTree([1, 1, 1, 1, 1])
        assert tree.total == 5
        # two non-tombstone gates before the CNOT at index 2
        assert tree.before(2) == 2

    def test_after_removing_the_two_x_gates(self):
        tree = IndexTree([1, 1, 1, 1, 1])
        tree.set_live(1, False)
        tree.set_live(3, False)
        assert tree.total == 3
        # the CNOT (index 2) now has exactly 1 live gate before it
        assert tree.before(2) == 1
        # ranks: 0 -> H at 0, 1 -> CNOT at 2, 2 -> gate at 4
        assert tree.select(0) == 0
        assert tree.select(1) == 2
        assert tree.select(2) == 4


class TestBasics:
    def test_empty(self):
        tree = IndexTree([])
        assert len(tree) == 0
        assert tree.total == 0

    def test_single(self):
        tree = IndexTree([1])
        assert tree.select(0) == 0
        assert tree.before(1) == 1

    def test_non_power_of_two_size(self):
        tree = IndexTree([1] * 5)
        assert tree.total == 5
        assert tree.before(5) == 5

    def test_is_live(self):
        tree = IndexTree([1, 0, 1])
        assert tree.is_live(0) and not tree.is_live(1) and tree.is_live(2)

    def test_before_bounds(self):
        tree = IndexTree([1, 1])
        with pytest.raises(IndexError):
            tree.before(-1)
        with pytest.raises(IndexError):
            tree.before(3)
        assert tree.before(2) == 2  # == len is allowed

    def test_select_bounds(self):
        tree = IndexTree([1, 0])
        with pytest.raises(IndexError):
            tree.select(1)
        with pytest.raises(IndexError):
            tree.select(-1)

    def test_set_live_idempotent(self):
        tree = IndexTree([1, 1])
        tree.set_live(0, True)
        assert tree.total == 2
        tree.set_live(0, False)
        tree.set_live(0, False)
        assert tree.total == 1

    def test_set_live_revival(self):
        tree = IndexTree([1, 1])
        tree.set_live(0, False)
        tree.set_live(0, True)
        assert tree.before(1) == 1

    def test_batch_update(self):
        tree = IndexTree([1] * 8)
        tree.set_live_batch([(i, False) for i in range(0, 8, 2)])
        assert tree.total == 4
        assert tree.select(0) == 1

    def test_live_indices(self):
        tree = IndexTree([1, 0, 1, 0, 1])
        assert list(tree.live_indices()) == [0, 2, 4]


class TestNextLive:
    def test_on_live_slot(self):
        tree = IndexTree([1, 0, 1])
        assert tree.next_live(0) == 0

    def test_skips_tombstones(self):
        tree = IndexTree([1, 0, 0, 1])
        assert tree.next_live(1) == 3

    def test_none_past_end(self):
        tree = IndexTree([1, 0])
        assert tree.next_live(1) is None
        assert tree.next_live(5) is None

    def test_negative_clamped(self):
        tree = IndexTree([0, 1])
        assert tree.next_live(-3) == 1


@given(st.lists(st.integers(0, 1), min_size=1, max_size=64))
def test_matches_naive_reference(flags):
    tree = IndexTree(flags)
    naive = NaiveIndex(flags)
    assert tree.total == naive.total
    for i in range(len(flags) + 1):
        assert tree.before(i) == naive.before(i)
    for r in range(naive.total):
        assert tree.select(r) == naive.select(r)


@given(
    st.lists(st.integers(0, 1), min_size=1, max_size=32),
    st.lists(st.tuples(st.integers(0, 31), st.booleans()), max_size=20),
)
def test_updates_match_naive(flags, updates):
    tree = IndexTree(flags)
    naive = NaiveIndex(flags)
    for idx, live in updates:
        if idx < len(flags):
            tree.set_live(idx, live)
            naive.flags[idx] = int(live)
    assert tree.total == naive.total
    for i in range(len(flags) + 1):
        assert tree.before(i) == naive.before(i)
    for r in range(naive.total):
        assert tree.select(r) == naive.select(r)
