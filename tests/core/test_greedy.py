"""Tests for the round-free greedy variant (rounds ablation)."""

import pytest

from repro.circuits import Circuit, H, random_redundant_circuit
from repro.core import (
    assert_locally_optimal,
    oracle_call_bound,
    popqc,
    popqc_greedy,
)
from repro.oracles import IdentityOracle, NamOracle
from repro.sim import circuits_equivalent


class TestBasics:
    def test_omega_validation(self):
        with pytest.raises(ValueError):
            popqc_greedy(Circuit([H(0)]), NamOracle(), 0)

    def test_empty_circuit(self):
        res = popqc_greedy(Circuit([], 2), NamOracle(), 4)
        assert res.circuit.num_gates == 0

    def test_identity_oracle_one_call_per_initial_finger(self):
        c = Circuit([H(i % 3) for i in range(20)], 3)
        res = popqc_greedy(c, IdentityOracle(), 5)
        assert res.stats.oracle_calls == 4
        assert res.circuit.gates == c.gates

    def test_max_steps(self):
        c = random_redundant_circuit(4, 200, seed=1, redundancy=0.8)
        res = popqc_greedy(c, NamOracle(), 5, max_steps=3)
        assert res.stats.rounds == 3


class TestGuarantees:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_equivalence(self, seed):
        c = random_redundant_circuit(4, 150, seed=seed)
        res = popqc_greedy(c, NamOracle(), 10)
        assert circuits_equivalent(c, res.circuit)

    @pytest.mark.parametrize("seed", [3, 4])
    def test_local_optimality(self, seed):
        oracle = NamOracle()
        c = random_redundant_circuit(4, 150, seed=seed)
        res = popqc_greedy(c, oracle, 8)
        assert_locally_optimal(res.circuit, oracle, 8)

    def test_call_bound(self):
        c = random_redundant_circuit(4, 200, seed=5)
        res = popqc_greedy(c, NamOracle(), 10)
        assert res.stats.oracle_calls <= oracle_call_bound(c.num_gates, 10)


class TestAgainstRoundedPopqc:
    """The ablation must match POPQC's quality (both locally optimal)."""

    @pytest.mark.parametrize("seed", [6, 7, 8])
    def test_same_final_gate_count_region(self, seed):
        c = random_redundant_circuit(4, 250, seed=seed, redundancy=0.6)
        oracle = NamOracle()
        greedy = popqc_greedy(c, oracle, 12)
        rounds = popqc(c, oracle, 12)
        gap = abs(greedy.circuit.num_gates - rounds.circuit.num_gates)
        assert gap <= 0.03 * c.num_gates

    def test_comparable_oracle_calls(self):
        c = random_redundant_circuit(4, 250, seed=9, redundancy=0.6)
        oracle = NamOracle()
        greedy = popqc_greedy(c, oracle, 12)
        rounds = popqc(c, oracle, 12)
        assert greedy.stats.oracle_calls <= 2 * rounds.stats.oracle_calls + 5
