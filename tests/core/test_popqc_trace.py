"""Reproduce the paper's Figure 2 walkthrough (Ω = 2).

The figure optimizes an 8-gate circuit with two fingers at indices 2
and 6: round one removes two X gates from the left segment in parallel
with a no-op on the right segment; round two removes two CNOTs around
the seam.  We reproduce the same dynamics with the rule-based oracle
and Ω=2, asserting the round structure and the final gate count.
"""

from repro.circuits import CNOT, Circuit, H, X
from repro.core import popqc
from repro.oracles import NamOracle
from repro.sim import circuits_equivalent


def figure2_circuit() -> Circuit:
    """An 8-gate circuit shaped like Figure 2's example.

    Left half: X;X around a CNOT pair that only cancels after the X
    removal propagates (mirrors the figure's two-stage optimization).
    """
    return Circuit(
        [
            H(0),
            X(1),
            X(1),
            CNOT(0, 1),
            CNOT(0, 1),
            H(2),
            CNOT(1, 2),
            H(1),
        ],
        3,
    )


class TestFigure2Dynamics:
    def test_multi_round_optimization(self):
        c = figure2_circuit()
        res = popqc(c, NamOracle(), 2, check_invariants=True)
        # The X pair and the CNOT pair must both disappear.
        assert res.circuit.num_gates == c.num_gates - 4
        # The optimization needs more than one round: the second pair is
        # only reachable after boundary fingers from the first round.
        assert res.stats.rounds >= 2
        assert circuits_equivalent(c, res.circuit)

    def test_round_one_selects_non_interfering_fingers(self):
        c = figure2_circuit()
        res = popqc(c, NamOracle(), 2, check_invariants=True)
        first = res.stats.per_round[0]
        # Initial fingers at 0, 2, 4, 6 -> selection keeps a subset with
        # pairwise rank distance >= 4 = 2*omega; at most 2 fit in 8 gates.
        assert 1 <= first.selected <= 2

    def test_finger_counts_decrease_to_zero(self):
        c = figure2_circuit()
        res = popqc(c, NamOracle(), 2)
        assert res.stats.per_round[-1].fingers >= 1
        # termination implies the implicit final finger set is empty
        assert res.stats.rounds == len(res.stats.per_round)
