"""Tests for the TombstoneArray (Algorithm 1's Circuit interface)."""


from repro.circuits import CNOT, H, X
from repro.core import FenwickTree, TombstoneArray


class TestBasics:
    def test_create(self):
        arr = TombstoneArray(["a", "b", "c"])
        assert len(arr) == 3
        assert arr.live_count == 3
        assert arr.items() == ["a", "b", "c"]

    def test_get_by_rank(self):
        arr = TombstoneArray(["a", "b", "c"])
        arr.substitute([(1, None)])
        assert arr.get(0) == "a"
        assert arr.get(1) == "c"

    def test_index_of(self):
        arr = TombstoneArray(["a", "b", "c"])
        arr.substitute([(0, None)])
        assert arr.index_of(0) == 1

    def test_before(self):
        arr = TombstoneArray(["a", "b", "c", "d"])
        arr.substitute([(1, None)])
        assert arr.before(0) == 0
        assert arr.before(2) == 1
        assert arr.before(4) == 3

    def test_peek_and_is_live(self):
        arr = TombstoneArray(["a", "b"])
        arr.substitute([(0, None)])
        assert arr.peek(0) is None
        assert not arr.is_live(0)
        assert arr.peek(1) == "b"

    def test_substitute_replacement(self):
        arr = TombstoneArray(["a", "b"])
        arr.substitute([(0, "z")])
        assert arr.items() == ["z", "b"]
        assert arr.live_count == 2

    def test_substitute_revives_tombstone(self):
        arr = TombstoneArray(["a", "b"])
        arr.substitute([(0, None)])
        arr.substitute([(0, "again")])
        assert arr.items() == ["again", "b"]

    def test_fenwick_factory(self):
        arr = TombstoneArray(["a", "b", "c"], tree_factory=FenwickTree)
        arr.substitute([(1, None)])
        assert arr.items() == ["a", "c"]
        assert arr.index_of(1) == 2


class TestSegments:
    def _make(self):
        arr = TombstoneArray(list("abcdefgh"))
        arr.substitute([(1, None), (4, None), (5, None)])
        # live: a(0) c(2) d(3) g(6) h(7); ranks 0..4
        return arr

    def test_full_segment(self):
        arr = self._make()
        indices, items = arr.segment(0, 5)
        assert items == ["a", "c", "d", "g", "h"]
        assert indices == [0, 2, 3, 6, 7]

    def test_middle_segment(self):
        arr = self._make()
        indices, items = arr.segment(1, 4)
        assert items == ["c", "d", "g"]
        assert indices == [2, 3, 6]

    def test_clipped_bounds(self):
        arr = self._make()
        indices, items = arr.segment(-5, 100)
        assert len(items) == 5

    def test_empty_range(self):
        arr = self._make()
        assert arr.segment(3, 3) == ([], [])
        assert arr.segment(4, 2) == ([], [])

    def test_segment_over_long_tombstone_run(self):
        arr = TombstoneArray(list(range(100)))
        arr.substitute([(i, None) for i in range(1, 99)])
        indices, items = arr.segment(0, 2)
        assert indices == [0, 99]
        assert items == [0, 99]

    def test_gates_with_gate_items(self):
        gates = [H(0), X(1), CNOT(0, 1)]
        arr = TombstoneArray(gates)
        arr.substitute([(1, None)])
        assert arr.items() == [H(0), CNOT(0, 1)]
