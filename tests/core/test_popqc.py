"""Tests for the POPQC driver (Algorithms 2-3, Theorems 4 and 7)."""

import pytest
from hypothesis import given, settings

from repro.circuits import CNOT, Circuit, H, X, random_redundant_circuit
from repro.core import (
    FenwickTree,
    assert_locally_optimal,
    oracle_call_bound,
    popqc,
)
from repro.oracles import GateCount, IdentityOracle, NamOracle
from repro.parallel import SerialMap, SimulatedParallelism, ThreadMap
from repro.sim import circuits_equivalent

from ..conftest import circuit_strategy


class TestBasicBehaviour:
    def test_empty_circuit(self, nam_oracle):
        res = popqc(Circuit([], 3), nam_oracle, 4)
        assert res.circuit.num_gates == 0
        assert res.stats.rounds == 0

    def test_omega_validation(self, nam_oracle):
        with pytest.raises(ValueError):
            popqc(Circuit([H(0)]), nam_oracle, 0)

    def test_accepts_gate_sequence(self, nam_oracle):
        res = popqc([H(0), H(0)], nam_oracle, 4)
        assert res.circuit.num_gates == 0

    def test_preserves_num_qubits(self, nam_oracle):
        c = Circuit([H(0)], num_qubits=7)
        res = popqc(c, nam_oracle, 4)
        assert res.circuit.num_qubits == 7

    def test_cancelable_circuit_fully_optimized(self, nam_oracle, cancelable_circuit):
        res = popqc(cancelable_circuit, nam_oracle, 4)
        assert res.circuit.num_gates == 0
        assert res.stats.gate_reduction == 1.0

    def test_already_optimal_unchanged(self, nam_oracle, bell_circuit):
        res = popqc(bell_circuit, nam_oracle, 4)
        assert res.circuit.gates == bell_circuit.gates


class TestIdentityOracle:
    def test_terminates_without_changes(self):
        c = Circuit([H(0), X(1), CNOT(0, 1)] * 10, 2)
        res = popqc(c, IdentityOracle(), 4)
        assert res.circuit.gates == c.gates
        assert res.stats.oracle_accepted == 0

    def test_each_initial_finger_called_once(self):
        c = Circuit([H(i % 3) for i in range(20)], 3)
        res = popqc(c, IdentityOracle(), 5)
        # 4 initial fingers at 0, 5, 10, 15; identity oracle -> each
        # drops after exactly one call
        assert res.stats.oracle_calls == 4


class TestSemanticsPreservation:
    @given(circuit_strategy(num_qubits=4, max_gates=40))
    @settings(max_examples=25)
    def test_equivalence_random(self, c):
        res = popqc(c, NamOracle(), 5, check_invariants=True)
        assert circuits_equivalent(c, res.circuit)

    def test_equivalence_redundant(self):
        c = random_redundant_circuit(4, 120, seed=3)
        res = popqc(c, NamOracle(), 10, check_invariants=True)
        assert circuits_equivalent(c, res.circuit)
        assert res.circuit.num_gates < c.num_gates


class TestLocalOptimality:
    """Theorem 7: every omega-window of the output is oracle-optimal."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_redundant_circuits(self, seed):
        oracle = NamOracle()
        c = random_redundant_circuit(4, 150, seed=seed)
        res = popqc(c, oracle, 8, check_invariants=True)
        assert_locally_optimal(res.circuit, oracle, 8)

    def test_benchmark_instance(self):
        from repro.benchgen import grover

        oracle = NamOracle()
        c = grover(4, iterations=2, seed=0)
        res = popqc(c, oracle, 20)
        assert_locally_optimal(res.circuit, oracle, 20, stride=3)


class TestOracleCallBound:
    """Lemma 2: O(n) oracle calls via the potential |F| + 2|C|."""

    @pytest.mark.parametrize("seed,omega", [(0, 5), (1, 10), (2, 20)])
    def test_calls_within_potential_bound(self, seed, omega):
        c = random_redundant_circuit(4, 200, seed=seed)
        res = popqc(c, NamOracle(), omega)
        assert res.stats.oracle_calls <= oracle_call_bound(c.num_gates, omega)

    def test_bound_function(self):
        assert oracle_call_bound(0, 10) == 0
        assert oracle_call_bound(100, 10) == 10 + 200


class TestExecutorIndependence:
    """The result must not depend on the parmap implementation."""

    def test_serial_vs_thread_vs_simulated(self):
        c = random_redundant_circuit(4, 150, seed=5)
        oracle = NamOracle()
        results = [
            popqc(c, oracle, 8, parmap=pmap).circuit.gates
            for pmap in (SerialMap(), ThreadMap(4), SimulatedParallelism(8))
        ]
        assert results[0] == results[1] == results[2]

    def test_deterministic_across_runs(self):
        c = random_redundant_circuit(4, 100, seed=9)
        oracle = NamOracle()
        a = popqc(c, oracle, 8).circuit.gates
        b = popqc(c, oracle, 8).circuit.gates
        assert a == b


class TestTreeFactoryParity:
    def test_fenwick_matches_index_tree(self):
        c = random_redundant_circuit(4, 150, seed=11)
        oracle = NamOracle()
        a = popqc(c, oracle, 8).circuit.gates
        b = popqc(c, oracle, 8, tree_factory=FenwickTree).circuit.gates
        assert a == b


class TestCostFunctions:
    def test_gate_count_cost_explicit(self):
        c = random_redundant_circuit(4, 80, seed=2)
        res = popqc(c, NamOracle(), 8, cost=GateCount())
        assert res.circuit.num_gates <= c.num_gates

    def test_stats_costs_recorded(self):
        c = random_redundant_circuit(4, 80, seed=2)
        res = popqc(c, NamOracle(), 8)
        assert res.stats.initial_cost == c.num_gates
        assert res.stats.final_cost == res.circuit.num_gates


class TestMaxRounds:
    def test_caps_rounds(self):
        c = random_redundant_circuit(4, 200, seed=4)
        res = popqc(c, NamOracle(), 4, max_rounds=2)
        assert res.stats.rounds == 2


class TestStatsAccounting:
    def test_round_stats_sum_to_totals(self):
        c = random_redundant_circuit(4, 150, seed=6)
        res = popqc(c, NamOracle(), 8)
        s = res.stats
        assert s.rounds == len(s.per_round)
        assert s.oracle_calls == sum(r.selected for r in s.per_round)
        assert s.oracle_accepted == sum(r.accepted for r in s.per_round)
        assert s.initial_gates == c.num_gates
        assert s.final_gates == res.circuit.num_gates
        assert 0 <= s.oracle_fraction <= 1

    def test_simulated_parallel_time(self):
        c = random_redundant_circuit(4, 150, seed=6)
        pmap = SimulatedParallelism(16)
        res = popqc(c, NamOracle(), 8, parmap=pmap)
        # parallel time must be positive and no more than total time
        assert 0 < res.stats.parallel_time <= res.stats.total_time * 1.05
        assert res.stats.self_speedup >= 1.0 or res.stats.rounds == 0


class TestGateReductionMetric:
    def test_monotone_improvement(self):
        c = random_redundant_circuit(4, 200, seed=8, redundancy=0.7)
        res = popqc(c, NamOracle(), 10)
        assert 0 < res.stats.gate_reduction < 1
