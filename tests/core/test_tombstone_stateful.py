"""Stateful property test: TombstoneArray against a model.

Hypothesis drives random interleavings of substitutions (writes,
deletions, revivals) and queries against a plain-list model; every
invariant of Algorithm 1's interface is checked after every step.
This is the strongest evidence that the index-tree bookkeeping stays
consistent under arbitrary optimizer behaviour.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core import TombstoneArray


class TombstoneModel(RuleBasedStateMachine):
    @initialize(items=st.lists(st.integers(0, 99), min_size=1, max_size=40))
    def setup(self, items):
        self.model: list = list(items)  # None marks a tombstone
        self.array = TombstoneArray(list(items))

    def _live(self):
        return [x for x in self.model if x is not None]

    @rule(data=st.data())
    def substitute_one(self, data):
        idx = data.draw(st.integers(0, len(self.model) - 1))
        value = data.draw(st.one_of(st.none(), st.integers(0, 99)))
        self.model[idx] = value
        self.array.substitute([(idx, value)])

    @rule(data=st.data())
    def substitute_batch(self, data):
        k = data.draw(st.integers(1, 5))
        updates = []
        for _ in range(k):
            idx = data.draw(st.integers(0, len(self.model) - 1))
            value = data.draw(st.one_of(st.none(), st.integers(0, 99)))
            updates.append((idx, value))
        for idx, value in updates:
            self.model[idx] = value
        self.array.substitute(updates)

    @rule(data=st.data())
    def query_before(self, data):
        idx = data.draw(st.integers(0, len(self.model)))
        expected = sum(1 for x in self.model[:idx] if x is not None)
        assert self.array.before(idx) == expected

    @rule(data=st.data())
    def query_get(self, data):
        live = self._live()
        if not live:
            return
        rank = data.draw(st.integers(0, len(live) - 1))
        assert self.array.get(rank) == live[rank]

    @rule(data=st.data())
    def query_segment(self, data):
        live = self._live()
        lo = data.draw(st.integers(-2, len(live) + 2))
        hi = data.draw(st.integers(-2, len(live) + 2))
        indices, items = self.array.segment(lo, hi)
        clamped_lo, clamped_hi = max(lo, 0), min(hi, len(live))
        expected = live[clamped_lo:clamped_hi] if clamped_lo < clamped_hi else []
        assert items == expected
        assert len(indices) == len(items)

    @invariant()
    def items_match(self):
        if not hasattr(self, "model"):
            return
        assert self.array.items() == self._live()
        assert self.array.live_count == len(self._live())


TestTombstoneStateful = TombstoneModel.TestCase
TestTombstoneStateful.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
