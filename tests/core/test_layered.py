"""Tests for the layered POPQC variant (Section 7.8)."""

import pytest

from repro.circuits import Circuit, H, X, random_redundant_circuit
from repro.core import layered_popqc, mixed_cost
from repro.oracles import MixedCost, NamOracle, SearchOracle
from repro.sim import circuits_equivalent


class TestMixedCost:
    def test_empty(self):
        assert mixed_cost()([]) == 0.0

    def test_formula(self):
        gates = [H(0), X(1), H(0)]  # depth 2, 3 gates
        assert mixed_cost(10.0)(gates) == 10.0 * 2 + 3

    def test_custom_weight(self):
        gates = [H(0)]
        assert mixed_cost(5.0)(gates) == 5.0 + 1


class TestLayeredPopqc:
    def test_omega_validation(self):
        with pytest.raises(ValueError):
            layered_popqc(Circuit([H(0)]), NamOracle(), 0)

    def test_empty_circuit(self):
        res = layered_popqc(Circuit([], 2), NamOracle(), 4)
        assert res.circuit.num_gates == 0

    def test_equivalence_preserved(self):
        c = random_redundant_circuit(4, 80, seed=1)
        res = layered_popqc(c, NamOracle(), 4)
        assert circuits_equivalent(c, res.circuit)

    def test_reduces_gate_count_with_gate_cost(self):
        c = random_redundant_circuit(4, 100, seed=2, redundancy=0.7)
        res = layered_popqc(c, NamOracle(), 4, cost=lambda g: float(len(g)))
        assert res.circuit.num_gates < c.num_gates

    def test_mixed_cost_reduces_cost(self):
        c = random_redundant_circuit(4, 100, seed=3, redundancy=0.7)
        res = layered_popqc(c, NamOracle(), 4)
        assert res.stats.final_cost < res.stats.initial_cost

    def test_depth_aware_search_oracle(self):
        # A circuit whose depth shrinks by commuting independent gates:
        # serial chain of rotations on one wire interleaved with gates
        # on other wires forces depth unless reordered.
        c = random_redundant_circuit(5, 120, seed=4, redundancy=0.6)
        res = layered_popqc(c, SearchOracle(MixedCost(10.0)), 4)
        assert circuits_equivalent(c, res.circuit)
        assert mixed_cost(10.0)(list(res.circuit.gates)) <= mixed_cost(10.0)(
            list(c.gates)
        )

    def test_stats_populated(self):
        c = random_redundant_circuit(4, 60, seed=5)
        res = layered_popqc(c, NamOracle(), 4)
        assert res.stats.rounds >= 1
        assert res.stats.initial_gates == c.num_gates
        assert res.stats.final_gates == res.circuit.num_gates
