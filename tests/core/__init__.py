"""Test package (enables relative imports of shared strategies in conftest)."""
