"""Tests for finger selection (Algorithm 4, Lemmas 1 and 5)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import initial_fingers, select_fingers


class TestInitialFingers:
    def test_multiples_of_omega(self):
        assert initial_fingers(10, 3) == [0, 3, 6, 9]

    def test_exact_multiple_excludes_length(self):
        # a finger at index == num_gates would be out of range
        assert initial_fingers(9, 3) == [0, 3, 6]

    def test_empty_circuit(self):
        assert initial_fingers(0, 5) == []

    def test_omega_larger_than_circuit(self):
        assert initial_fingers(3, 100) == [0]

    def test_omega_validation(self):
        with pytest.raises(ValueError):
            initial_fingers(10, 0)


class TestSelectFingers:
    def test_empty(self):
        assert select_fingers([], 2) == ([], [])

    def test_single_finger_selected(self):
        sel, rem = select_fingers([0], 2)
        assert sel == [0] and rem == []

    def test_partition_is_complete(self):
        ranks = [0, 1, 4, 8, 9, 12, 17]
        sel, rem = select_fingers(ranks, 2)
        assert sorted(sel + rem) == list(range(len(ranks)))

    def test_first_of_each_group_eligible(self):
        # omega=2 -> groups of 4: ranks 0,1 in g0; 4 in g1; 8,9 in g2
        sel, rem = select_fingers([0, 1, 4, 8, 9], 2)
        # even groups g0, g2 have firsts 0 and 8 (positions 0, 3)
        # odd group g1 has first 4 (position 2); even set is larger
        assert sel == [0, 3]

    def test_tie_goes_to_odd(self):
        # one even-group finger, one odd-group finger: tie -> odd per
        # the paper's strict '>' comparison
        sel, rem = select_fingers([0, 4], 2)
        assert sel == [1]
        assert rem == [0]

    def test_unsorted_ranks_rejected(self):
        with pytest.raises(ValueError):
            select_fingers([5, 1], 2)

    def test_omega_validation(self):
        with pytest.raises(ValueError):
            select_fingers([0], 0)


@given(
    st.lists(st.integers(0, 500), min_size=1, max_size=60).map(sorted),
    st.integers(1, 10),
)
def test_selected_fingers_non_interfering(ranks, omega):
    """Lemma 5: any two selected fingers are >= 2*omega apart in rank."""
    sel, _ = select_fingers(ranks, omega)
    chosen = [ranks[i] for i in sel]
    for a, b in zip(chosen, chosen[1:]):
        assert b - a >= 2 * omega


@given(
    st.lists(st.integers(0, 500), min_size=1, max_size=60, unique=True).map(sorted),
    st.integers(1, 10),
)
def test_selection_fraction(ranks, omega):
    """Lemma 1: at least |F| / (4*omega) fingers are selected.

    The bound assumes distinct ranks (a 2Ω-group holds at most 2Ω of
    them); duplicate ranks — possible in the driver when every gate
    between two fingers is tombstoned — are covered separately below.
    """
    sel, _ = select_fingers(ranks, omega)
    assert len(sel) >= len(ranks) / (4 * omega)
    assert len(sel) >= 1  # progress is always made


@given(
    st.lists(st.integers(0, 500), min_size=1, max_size=60).map(sorted),
    st.integers(1, 10),
)
def test_duplicate_ranks_still_progress(ranks, omega):
    """With duplicate ranks the 1/4Ω fraction can't hold (an entire
    cluster interferes with itself), but selection must still make
    progress and stay non-interfering."""
    sel, rem = select_fingers(ranks, omega)
    assert len(sel) >= 1
    chosen = [ranks[i] for i in sel]
    for a, b in zip(chosen, chosen[1:]):
        assert b - a >= 2 * omega
    assert sorted(sel + rem) == list(range(len(ranks)))


@given(
    st.lists(st.integers(0, 300), min_size=1, max_size=40).map(sorted),
    st.integers(1, 8),
)
def test_partition_disjoint_and_complete(ranks, omega):
    sel, rem = select_fingers(ranks, omega)
    assert set(sel).isdisjoint(rem)
    assert sorted(sel + rem) == list(range(len(ranks)))
