"""Tests for the local-optimality verifier."""

import pytest

from repro.circuits import CNOT, Circuit, H, X
from repro.core import (
    assert_locally_optimal,
    find_local_optimality_violations,
    oracle_call_bound,
)
from repro.oracles import IdentityOracle, NamOracle


class TestViolationDetection:
    def test_unoptimized_circuit_has_violations(self):
        c = Circuit([H(0), H(0), X(1), X(1)], 2)
        violations = find_local_optimality_violations(c, NamOracle(), 4)
        assert violations
        v = violations[0]
        assert v.cost_after < v.cost_before

    def test_optimal_circuit_clean(self):
        c = Circuit([H(0), CNOT(0, 1), X(1)], 2)
        assert find_local_optimality_violations(c, NamOracle(), 3) == []

    def test_identity_oracle_never_violates(self):
        c = Circuit([H(0), H(0)] * 5, 1)
        assert find_local_optimality_violations(c, IdentityOracle(), 4) == []

    def test_empty_circuit(self):
        assert find_local_optimality_violations(Circuit(), NamOracle(), 4) == []

    def test_stride_still_finds_adjacent_pair(self):
        c = Circuit([X(0)] * 8, 1)
        violations = find_local_optimality_violations(c, NamOracle(), 4, stride=2)
        assert violations

    def test_max_windows_sampling(self):
        c = Circuit([H(0), H(0)] * 20, 1)
        violations = find_local_optimality_violations(
            c, NamOracle(), 4, max_windows=3, seed=0
        )
        assert len(violations) <= 3

    def test_violation_str(self):
        c = Circuit([H(0), H(0)], 1)
        (v,) = find_local_optimality_violations(c, NamOracle(), 2)
        assert "segment at rank 0" in str(v)


class TestAssertion:
    def test_raises_on_violation(self):
        c = Circuit([X(0), X(0)], 1)
        with pytest.raises(AssertionError, match="locally non-optimal"):
            assert_locally_optimal(c, NamOracle(), 2)

    def test_passes_on_optimal(self):
        c = Circuit([H(0), CNOT(0, 1)], 2)
        assert_locally_optimal(c, NamOracle(), 2)


class TestBound:
    def test_zero_gates(self):
        assert oracle_call_bound(0, 5) == 0

    def test_formula(self):
        # ceil(10/3) + 2*10 = 4 + 20
        assert oracle_call_bound(10, 3) == 24
