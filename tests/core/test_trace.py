"""Tests for the round-trace instrumentation."""

import pytest

from repro.circuits import Circuit, H, random_redundant_circuit
from repro.core import popqc, popqc_traced, render_trace
from repro.oracles import IdentityOracle, NamOracle
from repro.sim import circuits_equivalent


class TestTracedRun:
    def test_matches_untraced_result(self):
        c = random_redundant_circuit(4, 200, seed=1, redundancy=0.6)
        traced, trace = popqc_traced(c, NamOracle(), 15)
        plain = popqc(c, NamOracle(), 15)
        assert traced.circuit.gates == plain.circuit.gates
        assert traced.stats.rounds == plain.stats.rounds
        assert traced.stats.oracle_calls == plain.stats.oracle_calls

    def test_one_trace_entry_per_round(self):
        c = random_redundant_circuit(4, 150, seed=2)
        res, trace = popqc_traced(c, NamOracle(), 10)
        assert len(trace) == res.stats.rounds

    def test_live_counts_monotone(self):
        c = random_redundant_circuit(4, 200, seed=3, redundancy=0.7)
        _, trace = popqc_traced(c, NamOracle(), 10)
        for rt in trace:
            assert rt.live_after <= rt.live_before
        for a, b in zip(trace, trace[1:]):
            assert b.live_before == a.live_after

    def test_selected_subset_of_fingers(self):
        c = random_redundant_circuit(4, 200, seed=4)
        _, trace = popqc_traced(c, NamOracle(), 10)
        for rt in trace:
            assert set(rt.selected_ranks) <= set(rt.finger_ranks)

    def test_identity_oracle_accepts_nothing(self):
        c = Circuit([H(i % 3) for i in range(30)], 3)
        _, trace = popqc_traced(c, IdentityOracle(), 5)
        assert all(not rt.accepted_regions for rt in trace)

    def test_equivalence_preserved(self):
        c = random_redundant_circuit(4, 120, seed=5)
        res, _ = popqc_traced(c, NamOracle(), 10)
        assert circuits_equivalent(c, res.circuit)

    def test_omega_validation(self):
        with pytest.raises(ValueError):
            popqc_traced(Circuit([H(0)]), NamOracle(), 0)

    def test_max_rounds(self):
        c = random_redundant_circuit(4, 200, seed=6, redundancy=0.8)
        _, trace = popqc_traced(c, NamOracle(), 5, max_rounds=2)
        assert len(trace) == 2


class TestRenderer:
    def test_empty_trace(self):
        assert render_trace([]) == "(no rounds)"

    def test_band_width_respected(self):
        c = random_redundant_circuit(4, 150, seed=7, redundancy=0.7)
        _, trace = popqc_traced(c, NamOracle(), 10)
        text = render_trace(trace, width=40)
        body_lines = text.splitlines()[1:-1]
        assert body_lines
        for line in body_lines:
            band = line.split()[-1]
            assert len(band) <= 40

    def test_contains_markers(self):
        c = random_redundant_circuit(4, 200, seed=8, redundancy=0.7)
        _, trace = popqc_traced(c, NamOracle(), 10)
        text = render_trace(trace)
        assert "#" in text  # selected fingers
        assert "=" in text  # accepted regions
