"""Oracle-transport benchmark: pickle vs encoded vs shared-memory.

The seed ``ProcessMap`` re-pickled the oracle callable and every
``list[Gate]`` segment on every round.  PR 1's encoded transport
registers the oracle once per worker (pool initializer) and ships
segments as compact numpy arrays; the shm transport goes further and
packs each round's segments into one pooled shared-memory arena with
batched task dispatch, so the executor pipe carries only small
descriptor tuples.  These benchmarks measure all three wire formats on
the segment stream of a ≥20k-gate circuit, prove the transports
byte-identical end to end, and emit a machine-readable
``BENCH_transport.json`` that CI uploads on every push and diffs
against the committed baseline (see ``benchmarks/README.md``).

Timing assertions use min-of-repeats, the standard way to compare two
implementations under scheduler noise; wall-clock *assertions* are
``slow``-marked and meant for real hardware (the nightly workflow),
not shared 2-vCPU CI runners.
"""

import json
import os
import platform
import sys
import time
from pathlib import Path

import pytest

from repro.circuits import encoded_nbytes, random_redundant_circuit, to_qasm
from repro.core import popqc
from repro.oracles import IdentityOracle, NamOracle
from repro.parallel import ProcessMap

OMEGA = 100

#: ≥20k gates, the acceptance workload.
CIRCUIT = random_redundant_circuit(12, 20000, seed=7, redundancy=0.5)

#: The per-round segment stream POPQC would ship: 2Ω-gate windows.
SEGMENTS = [
    list(CIRCUIT.gates[i : i + 2 * OMEGA])
    for i in range(0, CIRCUIT.num_gates, 2 * OMEGA)
]

ORACLE = NamOracle()

#: Where the machine-readable benchmark record lands (repo root, so CI
#: can upload it as an artifact without path gymnastics).
BENCH_JSON = Path(
    os.environ.get(
        "BENCH_TRANSPORT_OUT",
        Path(__file__).resolve().parent.parent / "BENCH_transport.json",
    )
)

#: Worker count for the smoke comparison (shared CI runners have 2
#: vCPUs; the slow acceptance tests use 4 and 8 on real hardware).
SMOKE_WORKERS = min(4, os.cpu_count() or 1)


def _round_time(
    transport: str, workers: int, oracle=ORACLE, segments=None, repeats: int = 3
) -> float:
    """Min wall-clock of one full segment-stream map over a warm pool."""
    segments = SEGMENTS if segments is None else segments
    pm = ProcessMap(workers, serial_cutoff=0, transport=transport)
    try:
        pm.map_segments(oracle, segments[:4])  # spawn + warm the workers
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            pm.map_segments(oracle, segments)
            best = min(best, time.perf_counter() - t0)
        return best
    finally:
        pm.close()


def _serial_time(segments, repeats: int = 3) -> float:
    """Min wall-clock of mapping the oracle inline (no IPC at all)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for seg in segments:
            ORACLE(list(seg))
        best = min(best, time.perf_counter() - t0)
    return best


# -- wall-clock acceptance (real hardware; nightly workflow) -------------------


@pytest.mark.slow
@pytest.mark.parametrize("workers", [4, 8])
def test_encoded_beats_pickle_transport(workers):
    """Acceptance: encoded persistent workers beat the seed wire format
    on a ≥20k-gate circuit at 4+ workers."""
    assert CIRCUIT.num_gates >= 20000
    pickled = _round_time("pickle", workers)
    encoded = _round_time("encoded", workers)
    assert encoded < pickled, (
        f"encoded transport ({encoded * 1e3:.1f} ms/round) should beat "
        f"pickled ({pickled * 1e3:.1f} ms/round) at {workers} workers"
    )


def _wire_time(transport: str, workers: int, repeats: int = 5) -> float:
    """Min transport time of one identity-oracle round: wall-clock
    minus the parent-side encode/decode that every transport pays
    identically (and that ``stats.serialization_time`` accounts
    separately).  What remains is what the wire formats actually
    compete on — pipe pickling + dispatch vs. arena views."""
    # IdentityOracle isolates pure transport cost from oracle work
    echo = IdentityOracle()
    pm = ProcessMap(workers, serial_cutoff=0, transport=transport)
    try:
        pm.map_segments(echo, SEGMENTS[:4])  # spawn + warm the workers
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            pm.map_segments(echo, SEGMENTS)
            elapsed = time.perf_counter() - t0
            best = min(best, elapsed - pm.last_serialization_time)
        return best
    finally:
        pm.close()


@pytest.mark.slow
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="the transports only separate with real parallelism; on <4 "
    "cores the (identical) worker-side codec serializes and swamps "
    "the pipe-vs-arena difference",
)
def test_shm_beats_encoded_transport():
    """Acceptance: the zero-copy arena transport moves the 20k-gate
    segment stream ≥1.25x faster than the encoded pipe transport at 4
    workers on real hardware.

    Measured with an identity oracle over transport wire time: the
    formats differ in how bytes move, not in oracle arithmetic, and
    the paper's scaling story is precisely the regime where oracle
    calls are cheap enough that IPC dominates."""
    assert CIRCUIT.num_gates >= 20000
    encoded = _wire_time("encoded", 4)
    shm = _wire_time("shm", 4)
    assert shm * 1.25 <= encoded, (
        f"shm wire time ({shm * 1e3:.1f} ms/round) should be ≥1.25x "
        f"faster than encoded ({encoded * 1e3:.1f} ms/round) at 4 workers"
    )


# -- cross-transport equivalence ----------------------------------------------


EQUIV_CIRCUIT = random_redundant_circuit(9, 4000, seed=11, redundancy=0.5)


@pytest.fixture(scope="module")
def serial_reference():
    return popqc(EQUIV_CIRCUIT, NamOracle(), 50)


@pytest.mark.parametrize("transport", ["pickle", "encoded", "shm"])
def test_cross_transport_equivalence(transport, serial_reference):
    """pickle/encoded/shm must produce byte-identical optimized
    circuits — same gates, same QASM bytes, same dynamics."""
    pm = ProcessMap(2, serial_cutoff=0, transport=transport)
    try:
        res = popqc(EQUIV_CIRCUIT, NamOracle(), 50, parmap=pm)
    finally:
        pm.close()
    assert res.circuit.gates == serial_reference.circuit.gates
    assert to_qasm(res.circuit) == to_qasm(serial_reference.circuit)
    assert res.stats.rounds == serial_reference.stats.rounds
    assert res.stats.oracle_calls == serial_reference.stats.oracle_calls


# -- wire-size + trend record (smoke mode; runs on every push) -----------------


def test_encoded_payload_is_smaller():
    """The encoded wire format is no larger than pickled gate lists.

    Measured as actual pipe bytes — the pickled EncodedSegment, framing
    included — not just the raw array payload.  (The wall-clock win
    above comes mostly from skipping per-object pickling CPU and
    per-round oracle shipping, not raw bytes.)"""
    import pickle as _pickle

    from repro.circuits import encode_segment

    total_pickled = sum(len(_pickle.dumps(seg)) for seg in SEGMENTS)
    total_encoded = sum(len(_pickle.dumps(encode_segment(seg))) for seg in SEGMENTS)
    assert total_encoded < total_pickled


def test_shm_task_messages_are_tiny():
    """What the shm transport actually pipes per round: batched index
    descriptors, orders of magnitude below the segment payload."""
    import pickle as _pickle

    from repro.parallel import batch_segments

    batches = batch_segments(len(SEGMENTS), 4, 1e-4)
    messages = [
        ("psm_abcdef01", "psm_abcdef02", 1, 1, start, end)
        for start, end in batches
    ]
    piped = sum(len(_pickle.dumps(m)) for m in messages)
    payload = sum(encoded_nbytes(seg) for seg in SEGMENTS)
    assert piped * 100 < payload


def test_three_way_comparison_emits_bench_json():
    """Measure serial/pickle/encoded/shm round throughput at smoke
    scale and write ``BENCH_transport.json`` for the CI trend job.

    This test only asserts sanity (positive throughputs, complete
    record); the regression *gate* lives in
    ``benchmarks/check_bench_trend.py`` against the committed baseline,
    and the wall-clock ordering assertions are the slow tests above.
    """
    smoke_segments = SEGMENTS[: max(12, 2 * SMOKE_WORKERS)]
    serial = _serial_time(smoke_segments, repeats=2)
    results = {
        "serial": {
            "seconds_per_round": serial,
            "segments_per_s": len(smoke_segments) / serial,
        }
    }
    for transport in ("pickle", "encoded", "shm"):
        elapsed = _round_time(
            transport, SMOKE_WORKERS, segments=smoke_segments, repeats=2
        )
        results[transport] = {
            "seconds_per_round": elapsed,
            "segments_per_s": len(smoke_segments) / elapsed,
        }

    record = {
        "schema": "popqc-bench-transport/v1",
        "generated_unix": time.time(),
        "workload": {
            "circuit_gates": CIRCUIT.num_gates,
            "omega": OMEGA,
            "segments": len(smoke_segments),
            "workers": SMOKE_WORKERS,
            "oracle": type(ORACLE).__name__,
        },
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "results": results,
        "derived": {
            "encoded_speedup_vs_pickle": results["pickle"]["seconds_per_round"]
            / results["encoded"]["seconds_per_round"],
            "shm_speedup_vs_encoded": results["encoded"]["seconds_per_round"]
            / results["shm"]["seconds_per_round"],
        },
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")

    assert all(r["segments_per_s"] > 0 for r in results.values())
    assert set(results) == {"serial", "pickle", "encoded", "shm"}


def test_transport_round_benchmark(benchmark):
    """Throughput of one encoded-transport round (for trend tracking)."""
    pm = ProcessMap(4, serial_cutoff=0, transport="encoded")
    try:
        pm.map_segments(ORACLE, SEGMENTS[:4])
        out = benchmark(lambda: pm.map_segments(ORACLE, SEGMENTS))
    finally:
        pm.close()
    assert len(out) == len(SEGMENTS)


def test_shm_round_benchmark(benchmark):
    """Throughput of one shm-transport round (for trend tracking)."""
    pm = ProcessMap(4, serial_cutoff=0, transport="shm")
    try:
        pm.map_segments(ORACLE, SEGMENTS[:4])
        out = benchmark(lambda: pm.map_segments(ORACLE, SEGMENTS))
    finally:
        pm.close()
    assert len(out) == len(SEGMENTS)
