"""Oracle-transport benchmark: pickle vs encoded vs shm vs threads vs socket.

The seed ``ProcessMap`` re-pickled the oracle callable and every
``list[Gate]`` segment on every round.  PR 1's encoded transport
registers the oracle once per worker (pool initializer) and ships
segments as compact numpy arrays; the shm transport packs each round's
segments into one pooled shared-memory arena with batched task
dispatch, so the executor pipe carries only small descriptor tuples;
the threads transport drops pipes and arenas entirely and relies on
the GIL-releasing vectorized rule engine
(:mod:`repro.oracles.vector_engine`); the socket transport ships the
same packed bytes as length-prefixed frames over TCP to worker hosts
(:mod:`repro.parallel.dist`), measured here against a localhost
multi-worker cluster.  These benchmarks measure all five wire formats
on the segment stream of a ≥20k-gate circuit, prove the transports
byte-identical end to end, compare the two rule-engine
implementations, record what lazy result decode skipped, and emit a
machine-readable ``BENCH_transport.json`` (schema v5) that CI uploads
on every push and diffs against the committed baseline (see
``benchmarks/README.md``).

Timing assertions use min-of-repeats, the standard way to compare two
implementations under scheduler noise; wall-clock *assertions* are
``slow``-marked and meant for real hardware (the nightly workflow),
not shared 2-vCPU CI runners — except the rule-engine comparison,
which is serial in-process and stable enough to gate on every push.
"""

import json
import os
import platform
import sys
import time
from pathlib import Path

import pytest

from repro.circuits import (
    encode_segment,
    encoded_nbytes,
    random_redundant_circuit,
    to_qasm,
)
from repro.core import popqc
from repro.oracles import IdentityOracle, NamOracle
from repro.parallel import ProcessMap, local_cluster
from repro.service import SegmentCache

OMEGA = 100

#: ≥20k gates, the acceptance workload.
CIRCUIT = random_redundant_circuit(12, 20000, seed=7, redundancy=0.5)

#: The per-round segment stream POPQC would ship: 2Ω-gate windows.
SEGMENTS = [
    list(CIRCUIT.gates[i : i + 2 * OMEGA])
    for i in range(0, CIRCUIT.num_gates, 2 * OMEGA)
]

ORACLE = NamOracle()

#: Where the machine-readable benchmark record lands (repo root, so CI
#: can upload it as an artifact without path gymnastics).
BENCH_JSON = Path(
    os.environ.get(
        "BENCH_TRANSPORT_OUT",
        Path(__file__).resolve().parent.parent / "BENCH_transport.json",
    )
)

#: Worker count for the smoke comparison (shared CI runners have 2
#: vCPUs; the slow acceptance tests use 4 and 8 on real hardware).
SMOKE_WORKERS = min(4, os.cpu_count() or 1)


def _round_time(
    transport: str,
    workers: int,
    oracle=ORACLE,
    segments=None,
    repeats: int = 3,
    hosts=None,
) -> float:
    """Min wall-clock of one full segment-stream map over a warm pool."""
    segments = SEGMENTS if segments is None else segments
    pm = ProcessMap(workers, serial_cutoff=0, transport=transport, hosts=hosts)
    try:
        pm.map_segments(oracle, segments[:4])  # spawn + warm the workers
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            pm.map_segments(oracle, segments)
            best = min(best, time.perf_counter() - t0)
        return best
    finally:
        pm.close()


def _serial_time(segments, repeats: int = 3) -> float:
    """Min wall-clock of mapping the oracle inline (no IPC at all)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for seg in segments:
            ORACLE(list(seg))
        best = min(best, time.perf_counter() - t0)
    return best


# -- wall-clock acceptance (real hardware; nightly workflow) -------------------


@pytest.mark.slow
@pytest.mark.parametrize("workers", [4, 8])
def test_encoded_beats_pickle_transport(workers):
    """Acceptance: encoded persistent workers beat the seed wire format
    on a ≥20k-gate circuit at 4+ workers."""
    assert CIRCUIT.num_gates >= 20000
    pickled = _round_time("pickle", workers)
    encoded = _round_time("encoded", workers)
    assert encoded < pickled, (
        f"encoded transport ({encoded * 1e3:.1f} ms/round) should beat "
        f"pickled ({pickled * 1e3:.1f} ms/round) at {workers} workers"
    )


def _wire_time(transport: str, workers: int, repeats: int = 5) -> float:
    """Min transport time of one identity-oracle round: wall-clock
    minus the parent-side encode/decode that every transport pays
    identically (and that ``stats.serialization_time`` accounts
    separately).  What remains is what the wire formats actually
    compete on — pipe pickling + dispatch vs. arena views."""
    # IdentityOracle isolates pure transport cost from oracle work
    echo = IdentityOracle()
    pm = ProcessMap(workers, serial_cutoff=0, transport=transport)
    try:
        pm.map_segments(echo, SEGMENTS[:4])  # spawn + warm the workers
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            pm.map_segments(echo, SEGMENTS)
            elapsed = time.perf_counter() - t0
            best = min(best, elapsed - pm.last_serialization_time)
        return best
    finally:
        pm.close()


@pytest.mark.slow
def test_threads_beats_pipe_transports_on_wire_time():
    """Acceptance: the threads transport, which moves no bytes at all,
    beats the encoded pipe transport on pure wire time — the oracle
    work is identical (identity), so what remains is IPC vs. nothing."""
    encoded = _wire_time("encoded", 2)
    threads = _wire_time("threads", 2)
    assert threads < encoded, (
        f"threads wire time ({threads * 1e3:.1f} ms/round) should beat "
        f"encoded ({encoded * 1e3:.1f} ms/round)"
    )


@pytest.mark.slow
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="the transports only separate with real parallelism; on <4 "
    "cores the (identical) worker-side codec serializes and swamps "
    "the pipe-vs-arena difference",
)
def test_shm_beats_encoded_transport():
    """Acceptance: the zero-copy arena transport moves the 20k-gate
    segment stream ≥1.25x faster than the encoded pipe transport at 4
    workers on real hardware.

    Measured with an identity oracle over transport wire time: the
    formats differ in how bytes move, not in oracle arithmetic, and
    the paper's scaling story is precisely the regime where oracle
    calls are cheap enough that IPC dominates."""
    assert CIRCUIT.num_gates >= 20000
    encoded = _wire_time("encoded", 4)
    shm = _wire_time("shm", 4)
    assert shm * 1.25 <= encoded, (
        f"shm wire time ({shm * 1e3:.1f} ms/round) should be ≥1.25x "
        f"faster than encoded ({encoded * 1e3:.1f} ms/round) at 4 workers"
    )


# -- cross-transport equivalence ----------------------------------------------


EQUIV_CIRCUIT = random_redundant_circuit(9, 4000, seed=11, redundancy=0.5)


@pytest.fixture(scope="module")
def serial_reference():
    return popqc(EQUIV_CIRCUIT, NamOracle(), 50)


@pytest.fixture(scope="module")
def socket_cluster():
    """A localhost multi-worker cluster for the socket transport."""
    with local_cluster(2) as hosts:
        yield hosts


@pytest.mark.parametrize(
    "transport", ["pickle", "encoded", "shm", "threads", "socket"]
)
def test_cross_transport_equivalence(transport, serial_reference, socket_cluster):
    """All five transports must produce byte-identical optimized
    circuits — same gates, same QASM bytes, same dynamics."""
    hosts = socket_cluster if transport == "socket" else None
    pm = ProcessMap(2, serial_cutoff=0, transport=transport, hosts=hosts)
    try:
        res = popqc(EQUIV_CIRCUIT, NamOracle(), 50, parmap=pm)
    finally:
        pm.close()
    assert res.circuit.gates == serial_reference.circuit.gates
    assert to_qasm(res.circuit) == to_qasm(serial_reference.circuit)
    assert res.stats.rounds == serial_reference.stats.rounds
    assert res.stats.oracle_calls == serial_reference.stats.oracle_calls


# -- wire-size + trend record (smoke mode; runs on every push) -----------------


def test_encoded_payload_is_smaller():
    """The encoded wire format is no larger than pickled gate lists.

    Measured as actual pipe bytes — the pickled EncodedSegment, framing
    included — not just the raw array payload.  (The wall-clock win
    above comes mostly from skipping per-object pickling CPU and
    per-round oracle shipping, not raw bytes.)"""
    import pickle as _pickle

    from repro.circuits import encode_segment

    total_pickled = sum(len(_pickle.dumps(seg)) for seg in SEGMENTS)
    total_encoded = sum(len(_pickle.dumps(encode_segment(seg))) for seg in SEGMENTS)
    assert total_encoded < total_pickled


def test_shm_task_messages_are_tiny():
    """What the shm transport actually pipes per round: batched index
    descriptors, orders of magnitude below the segment payload."""
    import pickle as _pickle

    from repro.parallel import batch_segments

    batches = batch_segments(len(SEGMENTS), 4, 1e-4)
    messages = [
        ("psm_abcdef01", "psm_abcdef02", 1, 1, start, end)
        for start, end in batches
    ]
    piped = sum(len(_pickle.dumps(m)) for m in messages)
    payload = sum(encoded_nbytes(seg) for seg in SEGMENTS)
    assert piped * 100 < payload


def _engine_seconds_per_segment(oracle, repeats: int = 3) -> dict:
    """Mean per-segment seconds of ``oracle`` over the segment stream,
    both on gate lists (``call``) and in the wire format (``packed`` —
    what a transport worker pays per segment, conversions included).

    The min is taken *per segment* across repeats, then summed: a
    whole-stream min would keep whichever scheduler hiccups each pass
    happened to hit, drowning a 20% engine difference in noise.
    """
    encoded = [encode_segment(seg) for seg in SEGMENTS]
    call_best = [float("inf")] * len(SEGMENTS)
    packed_best = [float("inf")] * len(SEGMENTS)
    for _ in range(repeats):
        for i, seg in enumerate(SEGMENTS):
            t0 = time.perf_counter()
            oracle(list(seg))
            call_best[i] = min(call_best[i], time.perf_counter() - t0)
        for i, enc in enumerate(encoded):
            t0 = time.perf_counter()
            oracle.run_packed(enc)
            packed_best[i] = min(packed_best[i], time.perf_counter() - t0)
    n = len(SEGMENTS)
    return {
        "call_seconds_per_segment": sum(call_best) / n,
        "packed_seconds_per_segment": sum(packed_best) / n,
    }


@pytest.fixture(scope="module")
def engine_results():
    """Both engines' per-segment timings, measured once per bench run
    (shared by the gate assertion and the emitted JSON record)."""
    return {
        "python": _engine_seconds_per_segment(NamOracle(engine="python")),
        "vector": _engine_seconds_per_segment(NamOracle(engine="vector")),
    }


def _lazy_decode_record() -> dict:
    """Lazy-decode stats of a fully rejecting workload (identity
    oracle over the encoded transport: every result is turned down by
    the acceptance test, so nothing should ever be unpacked)."""
    pm = ProcessMap(2, serial_cutoff=0, transport="encoded")
    try:
        res = popqc(CIRCUIT, IdentityOracle(), OMEGA, parmap=pm, max_rounds=4)
    finally:
        pm.close()
    stats = res.stats
    return {
        "workload": "identity-oracle (all results rejected)",
        "results_returned": stats.results_returned,
        "results_decoded": stats.results_decoded,
        "bytes_returned": stats.result_bytes_returned,
        "bytes_decoded": stats.result_bytes_decoded,
        "bytes_skipped": stats.skipped_decode_bytes,
        "decode_skip_fraction": stats.decode_skip_fraction,
    }


def test_vector_engine_beats_python_engine_per_segment(engine_results):
    """Acceptance: on the wire format — what every transport worker
    actually pays per segment — the vectorized rule engine beats the
    seed gate-list engine.  Serial, in-process, min-of-repeats: stable
    enough to gate on shared runners."""
    python = engine_results["python"]
    vector = engine_results["vector"]
    assert vector["packed_seconds_per_segment"] < python[
        "packed_seconds_per_segment"
    ], (
        f"vector engine ({vector['packed_seconds_per_segment'] * 1e3:.2f} "
        f"ms/segment packed) should beat the seed engine "
        f"({python['packed_seconds_per_segment'] * 1e3:.2f} ms/segment)"
    )


@pytest.fixture(scope="module")
def service_results():
    """The segment-cache comparison of the ``service`` record: per-
    segment cost of resolving a cache *hit* (fingerprint + lookup +
    lazy handle, fully warm cache) vs. re-executing the oracle, over
    the full segment stream.  Measured once per bench run, shared by
    the acceptance assertion and the emitted JSON.
    """
    oracle_best = _serial_time(SEGMENTS, repeats=3)
    cache = SegmentCache()
    pm = ProcessMap(2, serial_cutoff=0, transport="threads", cache=cache)
    try:
        pm.map_segments(ORACLE, SEGMENTS)  # cold pass fills the cache
        warm_h0, warm_m0 = pm.cache_hits, pm.cache_misses
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            pm.map_segments(ORACLE, SEGMENTS)
            best = min(best, time.perf_counter() - t0)
        warm_hits = pm.cache_hits - warm_h0
        warm_misses = pm.cache_misses - warm_m0
        hit_rate = warm_hits / (warm_hits + warm_misses)
    finally:
        pm.close()
    n = len(SEGMENTS)
    hit = best / n
    oracle = oracle_best / n
    return {
        "workload": "warm segment cache over the full segment stream",
        "segments": n,
        "cache_hit_seconds_per_segment": hit,
        "oracle_seconds_per_segment": oracle,
        "hit_speedup_vs_oracle": oracle / hit,
        "hit_rate_after_warmup": hit_rate,
        "cache_entries": len(cache),
        "cache_bytes": cache.memory_bytes,
    }


def test_cache_hits_resolve_10x_faster_than_oracle(service_results):
    """Acceptance: a warm cache resolves a repeated segment ≥10x
    faster than re-running the oracle on it.  Both sides are serial,
    in-process, min-of-repeats — a ratio stable enough to gate on
    shared runners, like the rule-engine comparison above."""
    assert service_results["hit_speedup_vs_oracle"] >= 10.0, (
        f"cache hit resolution "
        f"({service_results['cache_hit_seconds_per_segment'] * 1e6:.0f} "
        f"us/segment) should be ≥10x faster than oracle re-execution "
        f"({service_results['oracle_seconds_per_segment'] * 1e6:.0f} us/segment)"
    )


@pytest.fixture(scope="module")
def cluster_cache_results():
    """The cluster-shared cache tier measured across *hosts*: a
    ``popqc serve`` daemon is the cache, two worker hosts consult it
    (``--cache``), and two drivers run the same segment stream — the
    first against host A (all misses, publishes every result), the
    second against host B (never saw the work, resolves every segment
    as a remote hit).  Records how much faster the warm remote pass is
    than re-executing the oracle.
    """
    from repro.parallel import WorkerHost
    from repro.service import OptimizationService

    smoke_segments = SEGMENTS[:24]
    tier = OptimizationService(ORACLE, workers=1, transport="threads").start()
    host_a = WorkerHost(capacity=2, cache_address=tier.address).start()
    host_b = WorkerHost(capacity=2, cache_address=tier.address).start()
    try:
        pm = ProcessMap(
            1, serial_cutoff=0, transport="socket", hosts=[host_a.address]
        )
        try:
            t0 = time.perf_counter()
            cold_results = pm.map_segments(ORACLE, smoke_segments)
            cold = time.perf_counter() - t0
        finally:
            pm.close()
        pm = ProcessMap(
            1, serial_cutoff=0, transport="socket", hosts=[host_b.address]
        )
        try:
            t0 = time.perf_counter()
            warm_results = pm.map_segments(ORACLE, smoke_segments)
            warm = time.perf_counter() - t0
        finally:
            pm.close()
        counters = {
            name: {
                "hits": host.cache_hits,
                "misses": host.cache_misses,
                "stores": host.cache_stores,
                "errors": host.cache_errors,
            }
            for name, host in (("host_a", host_a), ("host_b", host_b))
        }
        tier_stats = tier.status()["cluster_cache"]
    finally:
        host_a.stop()
        host_b.stop()
        tier.stop()
    assert warm_results == cold_results  # shared cache is transparent
    oracle_best = _serial_time(smoke_segments, repeats=2)
    n = len(smoke_segments)
    return {
        "workload": "same segment stream through two hosts sharing one "
        "cache tier (cold publish on A, warm remote hits on B)",
        "segments": n,
        "cold_seconds": cold,
        "warm_remote_seconds": warm,
        "remote_hit_seconds_per_segment": warm / n,
        "oracle_seconds_per_segment": oracle_best / n,
        "remote_hit_speedup_vs_oracle": oracle_best / warm,
        "tier": tier_stats,
        **counters,
    }


def test_second_host_resolves_warm_segments_remotely(cluster_cache_results):
    """Acceptance: a host that never ran a segment resolves the whole
    warm stream from the cluster cache — every lookup a hit, no oracle
    re-execution — and faster than running the oracle again."""
    r = cluster_cache_results
    assert r["host_a"]["misses"] == r["segments"]  # cold pass paid the oracle
    assert r["host_a"]["stores"] == r["segments"]  # ...and published it all
    assert r["host_b"]["hits"] == r["segments"]  # warm pass was all remote hits
    assert r["host_b"]["misses"] == 0
    assert r["host_a"]["errors"] == 0 and r["host_b"]["errors"] == 0
    assert r["tier"]["stores"] == r["segments"]
    assert r["tier"]["hits"] == r["segments"]
    assert r["remote_hit_speedup_vs_oracle"] > 1.0, (
        f"remote cache hits "
        f"({r['remote_hit_seconds_per_segment'] * 1e6:.0f} us/segment) "
        f"should beat oracle re-execution "
        f"({r['oracle_seconds_per_segment'] * 1e6:.0f} us/segment)"
    )


def _socket_record(smoke_segments, hosts) -> dict:
    """Throughput + wire accounting of one socket-transport round over
    the localhost cluster (the BENCH_transport.json `socket` section).

    Timing goes through ``_round_time`` so the socket row uses exactly
    the same warm-up and min-of-repeats methodology as the other
    transports; wire-byte accounting comes from one separate round.
    """
    best = _round_time(
        "socket", len(hosts), segments=smoke_segments, repeats=2, hosts=hosts
    )
    pm = ProcessMap(
        len(hosts), serial_cutoff=0, transport="socket", hosts=hosts
    )
    try:
        pm.map_segments(ORACLE, smoke_segments)
        return {
            "seconds_per_round": best,
            "segments_per_s": len(smoke_segments) / best,
            "hosts": len(hosts),
            "bytes_sent": pm.socket_bytes_sent,
            "bytes_received": pm.socket_bytes_received,
            "reconnects": pm.socket_reconnects,
        }
    finally:
        pm.close()


def test_five_way_comparison_emits_bench_json(
    engine_results, socket_cluster, service_results, cluster_cache_results
):
    """Measure serial/pickle/encoded/shm/threads/socket round
    throughput at smoke scale (socket against the localhost cluster),
    the rule-engine comparison, the lazy-decode stats and the
    segment-cache comparisons (in-process and cluster-shared), and
    write ``BENCH_transport.json`` (schema v5) for the CI trend job.

    This test only asserts sanity (positive throughputs, complete
    record, lazy decode skipping bytes on a rejecting workload); the
    regression *gate* lives in ``benchmarks/check_bench_trend.py``
    against the committed baseline, and the wall-clock ordering
    assertions are the slow tests above.
    """
    smoke_segments = SEGMENTS[: max(12, 2 * SMOKE_WORKERS)]
    serial = _serial_time(smoke_segments, repeats=2)
    results = {
        "serial": {
            "seconds_per_round": serial,
            "segments_per_s": len(smoke_segments) / serial,
        }
    }
    for transport in ("pickle", "encoded", "shm", "threads"):
        elapsed = _round_time(
            transport, SMOKE_WORKERS, segments=smoke_segments, repeats=2
        )
        results[transport] = {
            "seconds_per_round": elapsed,
            "segments_per_s": len(smoke_segments) / elapsed,
        }
    results["socket"] = _socket_record(smoke_segments, socket_cluster)

    engines = engine_results
    lazy = _lazy_decode_record()

    record = {
        "schema": "popqc-bench-transport/v5",
        "generated_unix": time.time(),
        "workload": {
            "circuit_gates": CIRCUIT.num_gates,
            "omega": OMEGA,
            "segments": len(smoke_segments),
            "workers": SMOKE_WORKERS,
            "oracle": type(ORACLE).__name__,
        },
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "results": results,
        "oracle_engine": engines,
        "lazy_decode": lazy,
        "service": service_results,
        "cluster_cache": cluster_cache_results,
        "derived": {
            "cache_hit_speedup_vs_oracle": service_results[
                "hit_speedup_vs_oracle"
            ],
            "remote_cache_hit_speedup_vs_oracle": cluster_cache_results[
                "remote_hit_speedup_vs_oracle"
            ],
            "encoded_speedup_vs_pickle": results["pickle"]["seconds_per_round"]
            / results["encoded"]["seconds_per_round"],
            "shm_speedup_vs_encoded": results["encoded"]["seconds_per_round"]
            / results["shm"]["seconds_per_round"],
            "threads_speedup_vs_pickle": results["pickle"]["seconds_per_round"]
            / results["threads"]["seconds_per_round"],
            "socket_speedup_vs_pickle": results["pickle"]["seconds_per_round"]
            / results["socket"]["seconds_per_round"],
            "vector_engine_packed_speedup": engines["python"][
                "packed_seconds_per_segment"
            ]
            / engines["vector"]["packed_seconds_per_segment"],
            "vector_engine_call_speedup": engines["python"][
                "call_seconds_per_segment"
            ]
            / engines["vector"]["call_seconds_per_segment"],
        },
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")

    assert all(r["segments_per_s"] > 0 for r in results.values())
    assert set(results) == {
        "serial", "pickle", "encoded", "shm", "threads", "socket",
    }
    # the socket section must come from a real multi-worker run with
    # bytes actually on the wire
    assert results["socket"]["hosts"] >= 2
    assert results["socket"]["bytes_sent"] > 0
    assert results["socket"]["bytes_received"] > 0
    # the lazy-decode acceptance pin: a rejecting workload must report
    # skipped decode bytes
    assert lazy["bytes_skipped"] > 0
    assert lazy["results_decoded"] == 0
    # the service section must come from a fully warm cache
    assert service_results["hit_rate_after_warmup"] == 1.0
    assert service_results["cache_entries"] > 0


def test_transport_round_benchmark(benchmark):
    """Throughput of one encoded-transport round (for trend tracking)."""
    pm = ProcessMap(4, serial_cutoff=0, transport="encoded")
    try:
        pm.map_segments(ORACLE, SEGMENTS[:4])
        out = benchmark(lambda: pm.map_segments(ORACLE, SEGMENTS))
    finally:
        pm.close()
    assert len(out) == len(SEGMENTS)


def test_shm_round_benchmark(benchmark):
    """Throughput of one shm-transport round (for trend tracking)."""
    pm = ProcessMap(4, serial_cutoff=0, transport="shm")
    try:
        pm.map_segments(ORACLE, SEGMENTS[:4])
        out = benchmark(lambda: pm.map_segments(ORACLE, SEGMENTS))
    finally:
        pm.close()
    assert len(out) == len(SEGMENTS)


def test_threads_round_benchmark(benchmark):
    """Throughput of one threads-transport round with the GIL-releasing
    vector oracle (for trend tracking)."""
    oracle = NamOracle(engine="vector")
    pm = ProcessMap(4, serial_cutoff=0, transport="threads")
    try:
        pm.map_segments(oracle, SEGMENTS[:4])
        out = benchmark(lambda: pm.map_segments(oracle, SEGMENTS))
    finally:
        pm.close()
    assert len(out) == len(SEGMENTS)


def test_socket_round_benchmark(benchmark, socket_cluster):
    """Throughput of one socket-transport round over the localhost
    cluster (for trend tracking)."""
    pm = ProcessMap(
        len(socket_cluster),
        serial_cutoff=0,
        transport="socket",
        hosts=socket_cluster,
    )
    try:
        pm.map_segments(ORACLE, SEGMENTS[:4])
        out = benchmark(lambda: pm.map_segments(ORACLE, SEGMENTS))
    finally:
        pm.close()
    assert len(out) == len(SEGMENTS)
