"""Oracle-transport benchmark: pickled vs encoded persistent workers.

The seed ``ProcessMap`` re-pickled the oracle callable and every
``list[Gate]`` segment on every round.  The encoded transport registers
the oracle once per worker (pool initializer) and ships segments as
compact numpy arrays.  These benchmarks measure both wire formats on
the segment stream of a ≥20k-gate circuit and assert the encoded
transport wins wall-clock — the property every scaling PR builds on.

Timing assertions use min-of-repeats, the standard way to compare two
implementations under scheduler noise.
"""

import time

import pytest

from repro.circuits import encoded_nbytes, random_redundant_circuit
from repro.oracles import NamOracle
from repro.parallel import ProcessMap

OMEGA = 100

#: ≥20k gates, the acceptance workload.
CIRCUIT = random_redundant_circuit(12, 20000, seed=7, redundancy=0.5)

#: The per-round segment stream POPQC would ship: 2Ω-gate windows.
SEGMENTS = [
    list(CIRCUIT.gates[i : i + 2 * OMEGA])
    for i in range(0, CIRCUIT.num_gates, 2 * OMEGA)
]

ORACLE = NamOracle()


def _round_time(transport: str, workers: int, repeats: int = 3) -> float:
    """Min wall-clock of one full segment-stream map over a warm pool."""
    pm = ProcessMap(workers, serial_cutoff=0, transport=transport)
    try:
        pm.map_segments(ORACLE, SEGMENTS[:4])  # spawn + warm the workers
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            pm.map_segments(ORACLE, SEGMENTS)
            best = min(best, time.perf_counter() - t0)
        return best
    finally:
        pm.close()


@pytest.mark.slow
@pytest.mark.parametrize("workers", [4, 8])
def test_encoded_beats_pickle_transport(workers):
    """Acceptance: encoded persistent workers beat the seed wire format
    on a ≥20k-gate circuit at 4+ workers."""
    assert CIRCUIT.num_gates >= 20000
    pickled = _round_time("pickle", workers)
    encoded = _round_time("encoded", workers)
    assert encoded < pickled, (
        f"encoded transport ({encoded * 1e3:.1f} ms/round) should beat "
        f"pickled ({pickled * 1e3:.1f} ms/round) at {workers} workers"
    )


def test_encoded_payload_is_smaller():
    """The encoded wire format is no larger than pickled gate lists.

    Measured as actual pipe bytes — the pickled EncodedSegment, framing
    included — not just the raw array payload.  (The wall-clock win
    above comes mostly from skipping per-object pickling CPU and
    per-round oracle shipping, not raw bytes.)"""
    import pickle as _pickle

    from repro.circuits import encode_segment

    total_pickled = sum(len(_pickle.dumps(seg)) for seg in SEGMENTS)
    total_encoded = sum(
        len(_pickle.dumps(encode_segment(seg))) for seg in SEGMENTS
    )
    assert total_encoded < total_pickled


def test_transport_round_benchmark(benchmark):
    """Throughput of one encoded-transport round (for trend tracking)."""
    pm = ProcessMap(4, serial_cutoff=0, transport="encoded")
    try:
        pm.map_segments(ORACLE, SEGMENTS[:4])
        out = benchmark(lambda: pm.map_segments(ORACLE, SEGMENTS))
    finally:
        pm.close()
    assert len(out) == len(SEGMENTS)
