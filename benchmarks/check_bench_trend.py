#!/usr/bin/env python
"""Gate the perf trajectory: compare a fresh benchmark record against
the committed baseline.

CI's ``bench-trend`` job runs a benchmark (which writes a JSON record),
uploads it as an artifact, then runs this script.  The record's
``schema`` field picks the gate set:

**Transport records** (``BENCH_transport.json``) gate two sections:

* **serial-map throughput** — oracle work with no IPC in the loop, the
  most runner-noise-tolerant number in the record: a >20% drop means
  the oracle/codec hot path itself got slower, not that the runner was
  busy;
* **socket throughput** — the full frame-codec + dispatcher path over
  a localhost multi-worker cluster; loopback TCP on one machine is
  scheduler-noisy, so this gate gets double the tolerance and exists to
  catch protocol-level regressions (an extra copy per frame, a lost
  pipelining opportunity), not percent-level drift.

Records of schema ``popqc-bench-transport/v5`` and later additionally
gate the **cluster cache** section: a second host resolving the warm
segment stream from the shared cache tier must beat oracle
re-execution (``remote_hit_speedup_vs_oracle > 1.0``).  The gate is a
ratio of two measurements on the same machine, so — like the
service-load SLO ratios — it is *always* armed, even against a
baseline from a different runner class, and a v5 record missing the
section is itself a regression.

The remaining parallel-transport numbers are recorded for the
trajectory but not gated (2-vCPU shared runners make them races).

**Service-load records** (``BENCH_service_load.json``, schema
``popqc-bench-service-load/v1``) gate four things:

* the schema itself — required sections and per-mix fields present;
* the **SLO ratios** — warm-duplicate p50 speedup over cold, and
  interactive p99 over flood p50.  Ratios are hardware-independent,
  so these gates are *always* armed, even against a baseline from a
  different runner class;
* the **cache-benefit floor** — the warm mix's hit rate may not drop
  more than ``--hit-rate-slack`` below the baseline's (deterministic
  traffic makes the hit rate near-deterministic too);
* **p99 latency regression** — per-mix p99 may not exceed baseline by
  more than ``--p99-tolerance``; absolute latency does not compare
  across hosts, so this one is warn-only cross-class (like the
  transport throughput gates) unless ``--strict``.

Usage::

    python benchmarks/check_bench_trend.py BENCH_transport.json \
        benchmarks/BENCH_transport_baseline.json [--tolerance 0.2]
    python benchmarks/check_bench_trend.py BENCH_service_load.json \
        benchmarks/BENCH_service_load_baseline.json
    python benchmarks/check_bench_trend.py BENCH_service_load.json \
        --validate-only   # schema + SLO gates, no baseline needed

Exit status 1 on regression.  To re-baseline after an intentional
change, copy the fresh JSON over the baseline file in the same PR.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Schema prefix of the service-load record family.
SERVICE_LOAD_SCHEMA = "popqc-bench-service-load"

#: Per-mix fields a well-formed service-load record must carry.
_MIX_REQUIRED = (
    "jobs_scheduled",
    "jobs_completed",
    "jobs_failed",
    "busy_rejections",
    "latency_seconds",
    "throughput_jobs_per_s",
    "cache",
)


def validate_service_load(record: dict) -> list[str]:
    """Structural schema check of a service-load record.

    Returns a list of problems (empty when the record is well-formed).
    Validation is deliberately shape-based, not jsonschema: the gate
    must run from a bare checkout with no extra dependencies.
    """
    problems: list[str] = []
    for key in ("schema", "host", "config", "mixes", "derived", "slo"):
        if key not in record:
            problems.append(f"missing top-level section {key!r}")
    if not str(record.get("schema", "")).startswith(SERVICE_LOAD_SCHEMA):
        problems.append(f"schema is {record.get('schema')!r}")
    for name in ("cold", "warm", "flood", "interactive"):
        if name not in record.get("mixes", {}):
            problems.append(f"missing suite mix {name!r}")
    for name, mix in record.get("mixes", {}).items():
        for key in _MIX_REQUIRED:
            if key not in mix:
                problems.append(f"mix {name!r} missing {key!r}")
        lat = mix.get("latency_seconds", {})
        for pct in ("p50", "p90", "p99"):
            if not isinstance(lat.get(pct), (int, float)):
                problems.append(f"mix {name!r} missing latency p{pct[1:]}")
        cache = mix.get("cache", {})
        if "hit_rate" not in cache or "trajectory" not in cache:
            problems.append(f"mix {name!r} cache section incomplete")
    derived = record.get("derived", {})
    slo = record.get("slo", {})
    for key in ("warm_p50_speedup_vs_cold", "interactive_p99_over_flood_p50"):
        if not isinstance(derived.get(key), (int, float)):
            problems.append(f"derived.{key} missing")
    for key in ("warm_p50_speedup_min", "interactive_p99_over_flood_p50_max"):
        if not isinstance(slo.get(key), (int, float)):
            problems.append(f"slo.{key} missing")
    return problems


def check_service_load(
    current: dict,
    baseline: dict | None,
    *,
    p99_tolerance: float,
    hit_rate_slack: float,
    strict: bool,
) -> int:
    """Gate a service-load record; returns the process exit status."""
    problems = validate_service_load(current)
    if problems:
        for p in problems:
            print(f"schema: {p}", file=sys.stderr)
        return 1

    hard: list[str] = []  # armed regardless of runner class
    soft: list[str] = []  # hardware-dependent: warn-only cross-class

    speedup = current["derived"]["warm_p50_speedup_vs_cold"]
    floor = current["slo"]["warm_p50_speedup_min"]
    verdict = "OK" if speedup >= floor else "SLO VIOLATION"
    print(
        f"warm p50 speedup vs cold: {speedup:.2f}x "
        f"(SLO >= {floor:.1f}x) -> {verdict}"
    )
    if speedup < floor:
        hard.append(
            f"warm duplicate p50 speedup {speedup:.2f}x below the "
            f"{floor:.1f}x SLO (the segment cache's latency benefit)"
        )

    ratio = current["derived"]["interactive_p99_over_flood_p50"]
    ceil = current["slo"]["interactive_p99_over_flood_p50_max"]
    verdict = "OK" if 0 < ratio <= ceil else "SLO VIOLATION"
    print(
        f"interactive p99 / flood p50: {ratio:.3f} "
        f"(SLO <= {ceil:.1f}) -> {verdict}"
    )
    if not 0 < ratio <= ceil:
        hard.append(
            f"interactive p99 is {ratio:.2f}x the flood p50, above the "
            f"{ceil:.1f}x starvation SLO"
        )

    for name, mix in sorted(current["mixes"].items()):
        if mix["jobs_failed"]:
            hard.append(
                f"mix {name!r}: {mix['jobs_failed']} failed jobs "
                f"({', '.join(mix.get('errors', [])) or 'no error detail'})"
            )
        lat = mix["latency_seconds"]
        print(
            f"{name:>12}: p50={lat['p50'] * 1000:.1f}ms "
            f"p99={lat['p99'] * 1000:.1f}ms "
            f"hit_rate={mix['cache']['hit_rate']:.2f} "
            f"busy={mix['busy_rejections']}"
        )

    if baseline is not None:
        base_problems = validate_service_load(baseline)
        if base_problems:
            for p in base_problems:
                print(f"baseline schema: {p}", file=sys.stderr)
            return 1
        base_hit = baseline["mixes"]["warm"]["cache"]["hit_rate"]
        cur_hit = current["mixes"]["warm"]["cache"]["hit_rate"]
        hit_floor = base_hit - hit_rate_slack
        verdict = "OK" if cur_hit >= hit_floor else "REGRESSION"
        print(
            f"warm cache hit rate: {cur_hit:.3f} "
            f"(baseline {base_hit:.3f}, floor {hit_floor:.3f}) -> {verdict}"
        )
        if cur_hit < hit_floor:
            hard.append(
                f"warm cache hit rate {cur_hit:.3f} fell below the "
                f"baseline floor {hit_floor:.3f} (cache-benefit floor)"
            )
        for name in sorted(current["mixes"]):
            base_mix = baseline["mixes"].get(name)
            if base_mix is None:
                continue
            got = current["mixes"][name]["latency_seconds"]["p99"]
            want = base_mix["latency_seconds"]["p99"]
            ceiling = want * (1.0 + p99_tolerance)
            if got > ceiling:
                soft.append(
                    f"mix {name!r} p99 {got * 1000:.1f}ms exceeds baseline "
                    f"{want * 1000:.1f}ms by more than "
                    f"{p99_tolerance:.0%} (ceiling {ceiling * 1000:.1f}ms)"
                )
        same_class = current.get("host", {}).get("cpus") == baseline.get(
            "host", {}
        ).get("cpus")
        if soft and not same_class and not strict:
            print(
                "p99 above ceiling, but the baseline was recorded on a "
                f"different runner class ({baseline.get('host')}); "
                "warn-only.  Re-baseline from this runner's artifact to "
                "arm the gate.",
                file=sys.stderr,
            )
            soft = []

    failures = hard + soft
    if failures:
        for line in failures:
            print(
                f"{line}; if intentional, re-baseline by committing the "
                "new JSON",
                file=sys.stderr,
            )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "current", help="freshly generated benchmark record (JSON)"
    )
    parser.add_argument(
        "baseline",
        nargs="?",
        default=None,
        help="committed baseline JSON (optional with --validate-only)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional throughput drop for the serial gate "
        "(default 0.2 = 20%%; the socket gate doubles this)",
    )
    parser.add_argument(
        "--p99-tolerance",
        type=float,
        default=0.5,
        help="allowed fractional per-mix p99 latency increase for "
        "service-load records (default 0.5 = 50%%)",
    )
    parser.add_argument(
        "--hit-rate-slack",
        type=float,
        default=0.05,
        help="allowed absolute warm-mix cache-hit-rate drop below the "
        "baseline (default 0.05)",
    )
    parser.add_argument(
        "--validate-only",
        action="store_true",
        help="service-load records: run the schema + SLO + zero-failure "
        "gates without a baseline (used on smoke records whose "
        "latencies are not baseline-comparable)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on regression even when the baseline was recorded on "
        "different hardware (default: warn-only in that case, since "
        "absolute throughput does not compare across hosts)",
    )
    args = parser.parse_args(argv)

    with open(args.current) as fh:
        current = json.load(fh)
    if args.baseline is None and not args.validate_only:
        parser.error("a baseline is required unless --validate-only")
    baseline = None
    if args.baseline is not None and not args.validate_only:
        with open(args.baseline) as fh:
            baseline = json.load(fh)

    if str(current.get("schema", "")).startswith(SERVICE_LOAD_SCHEMA):
        return check_service_load(
            current,
            baseline,
            p99_tolerance=args.p99_tolerance,
            hit_rate_slack=args.hit_rate_slack,
            strict=args.strict,
        )

    if baseline is None:
        print(
            "--validate-only only applies to service-load records",
            file=sys.stderr,
        )
        return 2

    # runner-class fingerprint: vCPU count (kernel strings churn too
    # much to compare whole host records)
    same_class = current.get("host", {}).get("cpus") == baseline.get(
        "host", {}
    ).get("cpus")

    regressions: list[str] = []  # hardware-dependent: warn-only cross-class
    hard: list[str] = []  # ratio gates: armed regardless of runner class

    schema = str(current.get("schema", ""))
    try:
        version = int(schema.rsplit("/v", 1)[1])
    except (IndexError, ValueError):
        version = 0
    if version >= 5:
        cluster = current.get("cluster_cache")
        if not isinstance(cluster, dict):
            hard.append(
                "cluster_cache: section missing from the fresh record "
                f"(required by schema {schema})"
            )
        else:
            ratio = cluster.get("remote_hit_speedup_vs_oracle")
            gated = isinstance(ratio, (int, float)) and ratio > 1.0
            verdict = "OK" if gated else "REGRESSION"
            print(
                f"cluster cache: remote hits resolve "
                f"{ratio if isinstance(ratio, (int, float)) else 0.0:.2f}x "
                f"faster than oracle re-execution (floor 1.0) -> {verdict}"
            )
            if not gated:
                hard.append(
                    f"cluster_cache: remote_hit_speedup_vs_oracle {ratio!r} "
                    "is not > 1.0 — a second host must resolve warm "
                    "segments from the shared cache faster than re-running "
                    "the oracle"
                )

    def gate(name: str, tolerance: float) -> None:
        got = current["results"].get(name, {}).get("segments_per_s")
        want = baseline["results"].get(name, {}).get("segments_per_s")
        if got is None:
            regressions.append(f"{name}: missing from the fresh record")
            return
        if want is None:
            print(f"{name}: {got:.0f} segments/s (no baseline yet; ungated)")
            return
        floor = (1.0 - tolerance) * want
        verdict = "OK" if got >= floor else "REGRESSION"
        print(
            f"{name}-map throughput: {got:.0f} segments/s "
            f"(baseline {want:.0f}, floor {floor:.0f}) -> {verdict}"
        )
        if got < floor:
            regressions.append(
                f"{name} throughput regressed >{tolerance:.0%} vs baseline"
            )

    gate("serial", args.tolerance)
    gate("socket", 2.0 * args.tolerance)

    for name in ("pickle", "encoded", "shm", "threads"):
        cur = current["results"].get(name, {}).get("segments_per_s")
        base = baseline["results"].get(name, {}).get("segments_per_s")
        if cur is not None and base is not None:
            print(
                f"{name:>8}: {cur:.0f} segments/s "
                f"(baseline {base:.0f}, informational)"
            )
    sock = current["results"].get("socket", {})
    if sock:
        print(
            f"socket wire: {sock.get('hosts', 0)} hosts, "
            f"{sock.get('bytes_sent', 0)} B out / "
            f"{sock.get('bytes_received', 0)} B in, "
            f"{sock.get('reconnects', 0)} reconnects"
        )
    engine = current.get("derived", {}).get("vector_engine_packed_speedup")
    if engine is not None:
        print(f"vector-engine packed speedup vs seed engine: {engine:.2f}x")
    lazy = current.get("lazy_decode", {})
    if lazy:
        print(
            f"lazy decode (rejecting workload): "
            f"{lazy.get('bytes_skipped', 0)} bytes skipped, "
            f"skip fraction {lazy.get('decode_skip_fraction', 0.0):.2f}"
        )
    service = current.get("service", {})
    if service:
        print(
            f"segment cache: hits resolve in "
            f"{service.get('cache_hit_seconds_per_segment', 0.0) * 1e6:.0f} "
            f"us/segment vs "
            f"{service.get('oracle_seconds_per_segment', 0.0) * 1e6:.0f} "
            f"us/segment oracle "
            f"({service.get('hit_speedup_vs_oracle', 0.0):.1f}x)"
        )

    if regressions and not same_class and not args.strict:
        print(
            "below floor, but the baseline was recorded on a different "
            f"runner class ({baseline.get('host')}); warn-only.  "
            "Re-baseline from this runner's artifact to arm the gate.",
            file=sys.stderr,
        )
        regressions = []
    failures = hard + regressions
    if failures:
        for line in failures:
            print(
                f"{line}; if intentional, re-baseline by committing the "
                "new JSON",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
