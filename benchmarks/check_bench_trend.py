#!/usr/bin/env python
"""Gate the perf trajectory: compare a fresh ``BENCH_transport.json``
against the committed baseline.

CI's ``bench-trend`` job runs the transport benchmark (which writes the
JSON), uploads it as an artifact, then runs this script.  Two sections
are gated:

* **serial-map throughput** — oracle work with no IPC in the loop, the
  most runner-noise-tolerant number in the record: a >20% drop means
  the oracle/codec hot path itself got slower, not that the runner was
  busy;
* **socket throughput** — the full frame-codec + dispatcher path over
  a localhost multi-worker cluster; loopback TCP on one machine is
  scheduler-noisy, so this gate gets double the tolerance and exists to
  catch protocol-level regressions (an extra copy per frame, a lost
  pipelining opportunity), not percent-level drift.

The remaining parallel-transport numbers are recorded for the
trajectory but not gated (2-vCPU shared runners make them races).

Usage::

    python benchmarks/check_bench_trend.py BENCH_transport.json \
        benchmarks/BENCH_transport_baseline.json [--tolerance 0.2]

Exit status 1 on regression.  To re-baseline after an intentional
change, copy the fresh JSON over the baseline file in the same PR.
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly generated BENCH_transport.json")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional throughput drop for the serial gate "
        "(default 0.2 = 20%%; the socket gate doubles this)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on regression even when the baseline was recorded on "
        "different hardware (default: warn-only in that case, since "
        "absolute throughput does not compare across hosts)",
    )
    args = parser.parse_args(argv)

    with open(args.current) as fh:
        current = json.load(fh)
    with open(args.baseline) as fh:
        baseline = json.load(fh)

    # runner-class fingerprint: vCPU count (kernel strings churn too
    # much to compare whole host records)
    same_class = current.get("host", {}).get("cpus") == baseline.get(
        "host", {}
    ).get("cpus")

    regressions: list[str] = []

    def gate(name: str, tolerance: float) -> None:
        got = current["results"].get(name, {}).get("segments_per_s")
        want = baseline["results"].get(name, {}).get("segments_per_s")
        if got is None:
            regressions.append(f"{name}: missing from the fresh record")
            return
        if want is None:
            print(f"{name}: {got:.0f} segments/s (no baseline yet; ungated)")
            return
        floor = (1.0 - tolerance) * want
        verdict = "OK" if got >= floor else "REGRESSION"
        print(
            f"{name}-map throughput: {got:.0f} segments/s "
            f"(baseline {want:.0f}, floor {floor:.0f}) -> {verdict}"
        )
        if got < floor:
            regressions.append(
                f"{name} throughput regressed >{tolerance:.0%} vs baseline"
            )

    gate("serial", args.tolerance)
    gate("socket", 2.0 * args.tolerance)

    for name in ("pickle", "encoded", "shm", "threads"):
        cur = current["results"].get(name, {}).get("segments_per_s")
        base = baseline["results"].get(name, {}).get("segments_per_s")
        if cur is not None and base is not None:
            print(
                f"{name:>8}: {cur:.0f} segments/s "
                f"(baseline {base:.0f}, informational)"
            )
    sock = current["results"].get("socket", {})
    if sock:
        print(
            f"socket wire: {sock.get('hosts', 0)} hosts, "
            f"{sock.get('bytes_sent', 0)} B out / "
            f"{sock.get('bytes_received', 0)} B in, "
            f"{sock.get('reconnects', 0)} reconnects"
        )
    engine = current.get("derived", {}).get("vector_engine_packed_speedup")
    if engine is not None:
        print(f"vector-engine packed speedup vs seed engine: {engine:.2f}x")
    lazy = current.get("lazy_decode", {})
    if lazy:
        print(
            f"lazy decode (rejecting workload): "
            f"{lazy.get('bytes_skipped', 0)} bytes skipped, "
            f"skip fraction {lazy.get('decode_skip_fraction', 0.0):.2f}"
        )
    service = current.get("service", {})
    if service:
        print(
            f"segment cache: hits resolve in "
            f"{service.get('cache_hit_seconds_per_segment', 0.0) * 1e6:.0f} "
            f"us/segment vs "
            f"{service.get('oracle_seconds_per_segment', 0.0) * 1e6:.0f} "
            f"us/segment oracle "
            f"({service.get('hit_speedup_vs_oracle', 0.0):.1f}x)"
        )

    if regressions:
        if not same_class and not args.strict:
            print(
                "below floor, but the baseline was recorded on a different "
                f"runner class ({baseline.get('host')}); warn-only.  "
                "Re-baseline from this runner's artifact to arm the gate.",
                file=sys.stderr,
            )
            return 0
        for line in regressions:
            print(
                f"{line}; if intentional, re-baseline by committing the "
                "new JSON",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
