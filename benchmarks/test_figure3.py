"""Figure 3: self-speedup vs number of workers (largest instances).

Paper shape: speedup curves rise with worker count and flatten as the
per-round task count limits available parallelism; deeper/larger
circuits scale further.
"""

from repro.experiments import run_figure3

WORKERS = (1, 2, 4, 8, 16, 32, 64)


def test_figure3(benchmark, bench_families):
    curves, text = benchmark.pedantic(
        run_figure3,
        kwargs=dict(families=bench_families, size_index=1, workers=WORKERS),
        iterations=1,
        rounds=1,
    )
    for c in curves:
        assert abs(c.speedups[0] - 1.0) < 0.05  # p=1 is the reference
        # non-decreasing within noise
        for a, b in zip(c.speedups, c.speedups[1:]):
            assert b >= a - 0.05
        # some real parallelism is exposed at p=64
        assert c.speedups[-1] > 1.3
