"""Table 3: POPQC (1 thread) vs OAC with the same oracle.

Paper shape: equal quality (both locally optimal, within 0.3%), with
POPQC faster on all but the smallest instances thanks to the index
tree replacing OAC's quadratic cut/meld/compress data movement.
"""

from repro.experiments import run_table3


def test_table3(benchmark, bench_families, bench_sizes):
    rows, text = benchmark.pedantic(
        run_table3,
        kwargs=dict(size_indices=bench_sizes, families=bench_families),
        iterations=1,
        rounds=1,
    )
    for r in rows:
        # local optimality on both sides implies near-identical quality
        assert abs(r.oac_reduction - r.popqc_reduction) < 0.05
        assert r.oac_time > 0 and r.popqc_time > 0


def test_table3_popqc_overtakes_with_size(benchmark):
    def run():
        rows, _ = run_table3(size_indices=(0, 2), families=["VQE"])
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    small, large = rows
    # the time ratio moves in POPQC's favour as circuits grow
    assert large.speedup >= small.speedup * 0.8
