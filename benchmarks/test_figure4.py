"""Figure 4: number of rounds, smallest vs largest instance.

Paper shape: rounds sit far below circuit size (20-130 in the paper)
and grow only mildly with instance size (e.g. +40% for an 8x larger
BoolSat).
"""

from repro.experiments import run_figure4


def test_figure4(benchmark, bench_families):
    points, text = benchmark.pedantic(
        run_figure4,
        kwargs=dict(families=bench_families, small_index=0, large_index=2),
        iterations=1,
        rounds=1,
    )
    for p in points:
        assert 1 <= p.rounds_small <= p.gates_small
        # rounds must stay far below gate count (span << work)
        assert p.rounds_large < p.gates_large / 20
        # rounds grow much slower than size
        size_ratio = p.gates_large / p.gates_small
        round_ratio = p.rounds_large / max(1, p.rounds_small)
        assert round_ratio < size_ratio
