"""Figure 7: single-thread work and #oracle calls vs circuit size.

Paper shape: both quantities grow approximately linearly in the gate
count (Lemma 2 bounds the calls by O(n); Theorem 4 bounds the work by
O(n lg n)).
"""

from repro.experiments import run_figure7


def test_figure7(benchmark):
    points, text = benchmark.pedantic(
        run_figure7,
        kwargs=dict(families=["Shor", "VQE"], size_indices=(0, 1, 2)),
        iterations=1,
        rounds=1,
    )
    by_family: dict[str, list] = {}
    for p in points:
        by_family.setdefault(p.family, []).append(p)
    for fam, pts in by_family.items():
        pts.sort(key=lambda p: p.gates)
        small, large = pts[0], pts[-1]
        size_ratio = large.gates / small.gates
        call_ratio = large.oracle_calls / max(1, small.oracle_calls)
        time_ratio = large.time_seconds / max(1e-9, small.time_seconds)
        # oracle calls linear in n (generous constant for small sizes)
        assert call_ratio < 3.0 * size_ratio
        # work n log n-ish: far below quadratic
        assert time_ratio < size_ratio ** 1.7
