"""Shared configuration for the benchmark harness.

Every paper table and figure has a ``test_table*.py`` / ``test_figure*.py``
file here; run them with::

    pytest benchmarks/ --benchmark-only

Each benchmark measures the corresponding experiment driver on a
reduced workload (the drivers accept ``size_indices`` / ``families``)
and asserts the *shape* properties the paper reports — who wins, how
quantities scale — so a benchmark run doubles as a reproduction check.
The full-scale runs used for EXPERIMENTS.md go through
``examples/paper_tables.py`` and ``examples/paper_figures.py``.
"""

from __future__ import annotations

import pytest

#: Families exercised by the default benchmark runs: one rule-heavy
#: (VQE), one rotation-heavy (Shor), one adjoint-structured (HHL).
BENCH_FAMILIES = ["HHL", "Shor", "VQE"]

#: Instance sizes for benchmark runs (small, to keep the suite minutes).
BENCH_SIZES = (0,)


@pytest.fixture(scope="session")
def bench_families():
    return list(BENCH_FAMILIES)


@pytest.fixture(scope="session")
def bench_sizes():
    return BENCH_SIZES
