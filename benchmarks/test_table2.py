"""Table 2: POPQC vs the whole-circuit baseline, both single-threaded.

Paper shape: the advantage of local optimization alone grows with
circuit size (the baseline's whole-circuit scans are superlinear, the
POPQC loop is O(n lg n)); at small sizes the baseline can win (the
paper's HHL-7 row shows 0.3x), with the crossover on deep instances.
"""

from repro.experiments import run_table2


def test_table2(benchmark, bench_families, bench_sizes):
    rows, text = benchmark.pedantic(
        run_table2,
        kwargs=dict(size_indices=bench_sizes, families=bench_families),
        iterations=1,
        rounds=1,
    )
    assert len(rows) == len(bench_families) * len(bench_sizes)
    for r in rows:
        assert r.popqc_time > 0 and r.baseline_time > 0
        assert r.speedup > 0


def test_table2_speedup_grows_with_size(benchmark):
    """The paper's central scaling claim at reduced scale: the
    POPQC-vs-baseline time ratio improves as instances grow."""

    def run():
        rows, _ = run_table2(size_indices=(0, 2), families=["VQE"])
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    small, large = rows
    assert large.speedup > small.speedup
