"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. **Index tree vs naive scans** — Section 3 motivates the index tree
   with the sparsity that tombstones create; replacing it with O(n)
   scans should visibly slow the optimizer as instances grow.
2. **Fenwick vs heap-layout tree** — two O(lg n) implementations of the
   same interface; their end-to-end difference is a constant factor.
3. **Fixpoint vs single-sweep oracle** — the fixpoint property is what
   makes the oracle well-behaved (Theorem 7's requirement); measuring
   its cost shows what the guarantee charges.
4. **Ω sensitivity** — the time/quality trade of Section A.3 at
   benchmark scale.
"""

from repro.benchgen import generate
from repro.core import FenwickTree, IndexTree, NaiveIndex, popqc
from repro.oracles import BASELINE_PASSES, NamOracle

CIRCUIT = generate("VQE", 1)
OMEGA = 100


def test_popqc_with_index_tree(benchmark):
    res = benchmark.pedantic(
        lambda: popqc(CIRCUIT, NamOracle(), OMEGA, tree_factory=IndexTree),
        iterations=1,
        rounds=2,
    )
    assert res.circuit.num_gates < CIRCUIT.num_gates


def test_popqc_with_fenwick(benchmark):
    res = benchmark.pedantic(
        lambda: popqc(CIRCUIT, NamOracle(), OMEGA, tree_factory=FenwickTree),
        iterations=1,
        rounds=2,
    )
    assert res.circuit.num_gates < CIRCUIT.num_gates


def test_popqc_with_naive_index(benchmark):
    """The ablated data structure: O(n) rank/select."""
    res = benchmark.pedantic(
        lambda: popqc(CIRCUIT, NamOracle(), OMEGA, tree_factory=NaiveIndex),
        iterations=1,
        rounds=2,
    )
    assert res.circuit.num_gates < CIRCUIT.num_gates


def test_all_tree_variants_agree():
    """The ablation must not change the result, only the time."""
    a = popqc(CIRCUIT, NamOracle(), OMEGA, tree_factory=IndexTree)
    b = popqc(CIRCUIT, NamOracle(), OMEGA, tree_factory=FenwickTree)
    c = popqc(CIRCUIT, NamOracle(), OMEGA, tree_factory=NaiveIndex)
    assert a.circuit.gates == b.circuit.gates == c.circuit.gates


def test_popqc_fixpoint_oracle(benchmark):
    res = benchmark.pedantic(
        lambda: popqc(CIRCUIT, NamOracle(), OMEGA), iterations=1, rounds=2
    )
    assert res.circuit.num_gates < CIRCUIT.num_gates


def test_popqc_single_sweep_oracle(benchmark):
    """Ablating the fixpoint: a single-sweep oracle still terminates
    (acceptance requires strict improvement) but voids the local-
    optimality guarantee."""
    oracle = NamOracle(BASELINE_PASSES, fixpoint=False)
    res = benchmark.pedantic(
        lambda: popqc(CIRCUIT, oracle, OMEGA), iterations=1, rounds=2
    )
    assert res.circuit.num_gates <= CIRCUIT.num_gates


def test_popqc_omega_50(benchmark):
    res = benchmark.pedantic(
        lambda: popqc(CIRCUIT, NamOracle(), 50), iterations=1, rounds=2
    )
    assert res.circuit.num_gates < CIRCUIT.num_gates


def test_popqc_omega_200(benchmark):
    res = benchmark.pedantic(
        lambda: popqc(CIRCUIT, NamOracle(), 200), iterations=1, rounds=2
    )
    assert res.circuit.num_gates < CIRCUIT.num_gates


def test_popqc_greedy_sequential(benchmark):
    """Round-free greedy variant: what the round structure costs on one
    thread (no selection, no rank recomputation per round)."""
    from repro.core import popqc_greedy

    res = benchmark.pedantic(
        lambda: popqc_greedy(CIRCUIT, NamOracle(), OMEGA), iterations=1, rounds=2
    )
    assert res.circuit.num_gates < CIRCUIT.num_gates


def test_greedy_matches_rounds_quality():
    from repro.core import popqc_greedy

    greedy = popqc_greedy(CIRCUIT, NamOracle(), OMEGA)
    rounds = popqc(CIRCUIT, NamOracle(), OMEGA)
    gap = abs(greedy.circuit.num_gates - rounds.circuit.num_gates)
    assert gap <= 0.02 * CIRCUIT.num_gates


def test_popqc_adaptive_omega(benchmark):
    """Section A.4's circuit-specific omega heuristic end to end."""
    from repro.core import popqc_adaptive

    res, profile = benchmark.pedantic(
        lambda: popqc_adaptive(CIRCUIT, NamOracle()), iterations=1, rounds=2
    )
    assert res.circuit.num_gates < CIRCUIT.num_gates
    assert profile.suggested_omega >= 50
