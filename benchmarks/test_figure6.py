"""Figure 6: search oracle with gate-count vs mixed (depth-aware) cost.

Paper shape: the mixed cost achieves clearly better depth reduction
than pure gate-count optimization, at a modest gate-count price.
"""

from repro.experiments import run_figure6


def test_figure6(benchmark):
    rows, text = benchmark.pedantic(
        run_figure6,
        kwargs=dict(families=["Shor", "VQE"], size_indices=(0,), omega=20),
        iterations=1,
        rounds=1,
    )
    depth_wins = 0
    for r in rows:
        if r.mixed_cost_depth_reduction >= r.gate_cost_depth_reduction - 1e-9:
            depth_wins += 1
    # mixed cost should match or beat gate cost on depth for the
    # majority of families (the paper shows it for all)
    assert depth_wins >= len(rows) - 1
