"""Figure 8: fraction of time spent inside the oracle.

Paper shape: oracle calls consume most of the runtime (>90% at scale),
i.e. the administrative machinery (fingers, index tree, substitution)
is cheap.
"""

from repro.experiments import run_figure8


def test_figure8(benchmark, bench_families):
    points, text = benchmark.pedantic(
        run_figure8,
        kwargs=dict(families=bench_families, size_indices=(0, 1)),
        iterations=1,
        rounds=1,
    )
    for p in points:
        assert p.oracle_fraction > 0.6
    # the fraction rises (or holds) as instances grow; the tolerance is
    # generous because wall-clock fractions on a loaded single-core
    # machine (e.g. mid-full-suite) jitter by tens of percentage points
    by_family: dict[str, list] = {}
    for p in points:
        by_family.setdefault(p.family, []).append(p)
    for pts in by_family.values():
        pts.sort(key=lambda p: p.gates)
        assert pts[-1].oracle_fraction >= pts[0].oracle_fraction - 0.3
