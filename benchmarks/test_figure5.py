"""Figure 5: self-speedup at 64 workers vs circuit size.

Paper shape: larger circuits expose more parallelism — the speedup
points trend upward with gate count.
"""

from repro.experiments import run_figure5


def test_figure5(benchmark):
    points, text = benchmark.pedantic(
        run_figure5,
        kwargs=dict(families=["Shor", "VQE"], size_indices=(0, 2), workers=64),
        iterations=1,
        rounds=1,
    )
    by_family: dict[str, list] = {}
    for p in points:
        by_family.setdefault(p.family, []).append(p)
    for fam, pts in by_family.items():
        pts.sort(key=lambda p: p.gates)
        # speedup grows (or at least does not collapse) with size
        assert pts[-1].speedup >= pts[0].speedup * 0.8
        assert pts[-1].speedup > 1.2
