"""Table 1: POPQC (parallel) vs the whole-circuit sequential baseline.

Paper shape: POPQC matches or beats the baseline's gate reduction while
its (simulated) parallel time undercuts the baseline increasingly with
size — by orders of magnitude at the paper's scales.
"""

from repro.experiments import run_table1


def test_table1(benchmark, bench_families, bench_sizes):
    rows, text = benchmark.pedantic(
        run_table1,
        kwargs=dict(size_indices=bench_sizes, families=bench_families, workers=64),
        iterations=1,
        rounds=1,
    )
    assert len(rows) == len(bench_families) * len(bench_sizes)
    for r in rows:
        # quality parity: fixpoint local optimization does not lose more
        # than a few points to the global single-sweep pipeline
        assert r.popqc_reduction >= r.baseline_reduction - 0.06
        assert r.popqc_time > 0 and r.baseline_time > 0
