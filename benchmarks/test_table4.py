"""Table 4: gate reduction under different initial gate orderings.

Paper shape: left-justified, right-justified and default orderings land
within a fraction of a percent of each other for most families.
"""

from repro.experiments import run_table4


def test_table4(benchmark, bench_families):
    rows, text = benchmark.pedantic(
        run_table4,
        kwargs=dict(size_indices=(0,), families=bench_families),
        iterations=1,
        rounds=1,
    )
    assert len(rows) == len(bench_families)
    for r in rows:
        values = [
            r.left_justified_reduction,
            r.right_justified_reduction,
            r.default_reduction,
        ]
        assert max(values) - min(values) < 0.10
