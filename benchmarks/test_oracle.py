"""Micro-benchmarks for the oracle passes on 2Ω-sized segments.

The paper's Theorem 4 treats the oracle cost W on a 2Ω-segment as the
dominant constant; these benchmarks pin down our W for the default
Ω=100 segments and for the individual passes.
"""

from repro.circuits import random_circuit, random_redundant_circuit
from repro.oracles import (
    NamOracle,
    SearchOracle,
    cancellation_pass,
    rotation_merge_pass,
)

SEGMENT = list(random_redundant_circuit(8, 200, seed=0).gates)
CLEAN_SEGMENT = list(random_circuit(8, 200, seed=1).gates)


def test_nam_oracle_fixpoint_redundant(benchmark):
    oracle = NamOracle()
    out = benchmark(lambda: oracle(list(SEGMENT)))
    assert len(out) < len(SEGMENT)


def test_nam_oracle_fixpoint_clean(benchmark):
    """Cost of a rejected oracle call (the common case at convergence)."""
    oracle = NamOracle()
    settled = oracle(list(CLEAN_SEGMENT))
    out = benchmark(lambda: oracle(list(settled)))
    assert out == settled


def test_cancellation_pass(benchmark):
    out, _ = benchmark(lambda: cancellation_pass(list(SEGMENT)))
    assert len(out) <= len(SEGMENT)


def test_rotation_merge_pass(benchmark):
    out, _ = benchmark(lambda: rotation_merge_pass(list(SEGMENT)))
    assert len(out) <= len(SEGMENT)


def test_search_oracle(benchmark):
    oracle = SearchOracle(beam_width=4, max_steps=2, node_budget=400)
    seg = SEGMENT[:60]
    out = benchmark(lambda: oracle(list(seg)))
    assert len(out) <= len(seg)
