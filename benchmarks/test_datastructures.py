"""Micro-benchmarks for the circuit data structure (Algorithm 1).

Measures the operations whose cost bounds Section 3 states, at a size
where O(lg n) and O(n) visibly separate (see test_ablations.py for the
end-to-end effect).
"""

import random

from repro.core import FenwickTree, IndexTree, TombstoneArray

N = 1 << 15


def _tombstoned_flags(n: int, live_fraction: float, seed: int = 0):
    rng = random.Random(seed)
    return [1 if rng.random() < live_fraction else 0 for _ in range(n)]


def test_index_tree_build(benchmark):
    flags = _tombstoned_flags(N, 0.5)
    tree = benchmark(IndexTree, flags)
    assert tree.total > 0


def test_index_tree_before(benchmark):
    tree = IndexTree(_tombstoned_flags(N, 0.5))
    idx = list(range(0, N, 97))

    def run():
        return [tree.before(i) for i in idx]

    out = benchmark(run)
    assert out[0] == 0


def test_index_tree_select(benchmark):
    tree = IndexTree(_tombstoned_flags(N, 0.5))
    ranks = list(range(0, tree.total, 97))

    def run():
        return [tree.select(r) for r in ranks]

    out = benchmark(run)
    assert len(out) == len(ranks)


def test_index_tree_substitute(benchmark):
    rng = random.Random(1)
    updates = [(rng.randrange(N), rng.random() < 0.5) for _ in range(512)]

    def run():
        tree = IndexTree([1] * N)
        tree.set_live_batch(updates)
        return tree.total

    benchmark(run)


def test_fenwick_before(benchmark):
    tree = FenwickTree(_tombstoned_flags(N, 0.5))
    idx = list(range(0, N, 97))
    benchmark(lambda: [tree.before(i) for i in idx])


def test_fenwick_select(benchmark):
    tree = FenwickTree(_tombstoned_flags(N, 0.5))
    ranks = list(range(0, tree.total, 97))
    benchmark(lambda: [tree.select(r) for r in ranks])


def test_tombstone_segment_extraction(benchmark):
    arr = TombstoneArray(list(range(N)))
    rng = random.Random(2)
    arr.substitute([(i, None) for i in rng.sample(range(N), N // 2)])

    def run():
        return arr.segment(arr.live_count // 2 - 200, arr.live_count // 2 + 200)

    indices, items = benchmark(run)
    assert len(items) == 400
