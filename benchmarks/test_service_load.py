"""The latency-SLO load benchmark: `BENCH_service_load.json`.

Launches a real `popqc serve` subprocess (or targets the daemon CI
passes through `POPQC_SERVE_HOST`), replays the full three-phase SLO
suite (`repro.service.loadgen.run_slo_suite`) against it, and writes
the schema-v1 record at the repo root so CI can upload it and gate it
against `benchmarks/BENCH_service_load_baseline.json` via
`check_bench_trend.py`.

The assertions here are the PR's acceptance criteria, enforced at
benchmark time as well as at gate time:

* every scheduled job of every mix completes (no errors, no dropped
  BUSY retries);
* the warm mix's duplicate traffic shows the cache's latency benefit
  (p50 speedup over cold >= the gated SLO);
* interactive submits injected during the batch flood meet the
  starvation bound (p99 <= the gated multiple of flood p50);
* the seeded schedule manifest is byte-reproducible.
"""

import json
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.service.loadgen import (
    INTERACTIVE_P99_OVER_FLOOD_P50_MAX,
    SCHEMA,
    WARM_P50_SPEEDUP_MIN,
    default_mixes,
    run_slo_suite,
    schedule_manifest,
)

#: Where the machine-readable record lands (repo root, so CI can
#: upload it as an artifact without path gymnastics).
BENCH_JSON = Path(
    os.environ.get(
        "BENCH_SERVICE_LOAD_OUT",
        Path(__file__).resolve().parent.parent / "BENCH_service_load.json",
    )
)

#: CI smoke runs set this to shrink the suite; the committed baseline
#: comes from a full run.
SMOKE = os.environ.get("BENCH_SERVICE_LOAD_SMOKE", "") not in ("", "0")

SEED = int(os.environ.get("BENCH_SERVICE_LOAD_SEED", "7"))


@pytest.fixture(scope="module")
def server_address():
    """A live daemon: CI's via POPQC_SERVE_HOST, else our own subprocess."""
    env_host = os.environ.get("POPQC_SERVE_HOST")
    if env_host:
        yield env_host.strip()
        return
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--bind",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--transport",
            "threads",
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        line = proc.stdout.readline()
        match = re.search(r"listening on (\S+)", line)
        assert match, f"unexpected serve banner: {line!r}"
        yield match.group(1)
    finally:
        proc.terminate()
        proc.wait(timeout=10)


@pytest.fixture(scope="module")
def record(server_address):
    """One suite run per module; every test asserts against it."""
    rec = run_slo_suite(
        server_address,
        seed=SEED,
        auth_token=os.environ.get("POPQC_AUTH_TOKEN"),
        smoke=SMOKE,
    )
    BENCH_JSON.write_text(json.dumps(rec, indent=2, sort_keys=True) + "\n")
    return rec


@pytest.mark.service
class TestServiceLoadBench:
    def test_every_job_completes(self, record):
        for name, mix in record["mixes"].items():
            assert mix["jobs_failed"] == 0, (name, mix["errors"])
            assert mix["jobs_completed"] == mix["jobs_scheduled"]

    def test_warm_cache_latency_benefit(self, record):
        speedup = record["derived"]["warm_p50_speedup_vs_cold"]
        assert speedup >= WARM_P50_SPEEDUP_MIN, (
            f"warm duplicate p50 only {speedup:.2f}x faster than cold "
            f"(SLO >= {WARM_P50_SPEEDUP_MIN}x)"
        )
        warm = record["mixes"]["warm"]
        assert warm["duplicate_latency_seconds"]["count"] > 0
        assert warm["cache"]["hit_rate"] > 0.3
        # the trajectory shows the cache warming: the last window (pure
        # replays) must out-hit the first (the cache-cold unique pool)
        trajectory = warm["cache"]["trajectory"]
        assert trajectory[-1]["hit_rate"] > trajectory[0]["hit_rate"]

    def test_interactive_starvation_bound(self, record):
        ratio = record["derived"]["interactive_p99_over_flood_p50"]
        assert 0 < ratio <= INTERACTIVE_P99_OVER_FLOOD_P50_MAX, (
            f"interactive p99 is {ratio:.2f}x the flood p50 "
            f"(SLO <= {INTERACTIVE_P99_OVER_FLOOD_P50_MAX}x)"
        )

    def test_record_is_schema_v1(self, record):
        assert record["schema"] == SCHEMA
        assert BENCH_JSON.exists()
        reread = json.loads(BENCH_JSON.read_text())
        assert reread["schema"] == SCHEMA
        for mix in reread["mixes"].values():
            for key in ("p50", "p90", "p99"):
                assert mix["latency_seconds"][key] >= 0

    def test_schedule_is_byte_reproducible(self):
        mixes = list(default_mixes(SMOKE).values())
        assert schedule_manifest(mixes, SEED) == schedule_manifest(
            mixes, SEED
        )
