"""Figure 9: impact of Ω on optimization quality and running time.

Paper shape: quality rises with Ω and saturates; time grows once Ω
passes the sweet spot (with an initial dip at very small Ω where
administrative overhead dominates).
"""

from repro.experiments import run_figure9

OMEGAS = (25, 50, 100, 200)


def test_figure9(benchmark):
    points, text = benchmark.pedantic(
        run_figure9,
        kwargs=dict(families=["Shor", "VQE"], size_index=1, omegas=OMEGAS),
        iterations=1,
        rounds=1,
    )
    assert [p.omega for p in points] == list(OMEGAS)
    reductions = [p.avg_reduction for p in points]
    # quality non-decreasing in omega (within noise)
    assert reductions[-1] >= reductions[0] - 0.01
    assert all(p.avg_time > 0 for p in points)
