#!/usr/bin/env python
"""Check that intra-repo markdown links and file pointers resolve.

Walks every ``*.md`` file in the repository (skipping virtualenvs and
caches), extracts ``[text](target)`` links and bare backticked file
pointers like ```src/repro/parallel/executor.py```, and verifies that
every repo-relative target exists.  External links (``http(s)://``,
``mailto:``) and pure in-page anchors (``#section``) are ignored;
anchored file links (``FILE.md#section``) are checked for the file
part only.

Exit status 1 when any link is dead — CI's ``docs`` job runs this on
every push so README/ARCHITECTURE/ROADMAP file pointers cannot rot
silently.

Usage::

    python tools/check_markdown_links.py [ROOT]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: [text](target) — excluding images is unnecessary; they resolve the same.
_LINK = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)\)")

#: Backticked repo paths: at least one '/' and a known source suffix, so
#: prose like `pytest -q` or `popqc --transport shm` is not matched.
_BACKTICK_PATH = re.compile(
    r"`([A-Za-z0-9_.\-]+(?:/[A-Za-z0-9_.\-]+)+"
    r"\.(?:py|md|json|yml|yaml|toml|qasm|csv|txt))`"
)

_SKIP_DIRS = {".git", "__pycache__", ".venv", "venv", "node_modules", ".ruff_cache"}

#: Harness-generated inputs, not repo documentation: their shorthand
#: pointers (and upstream image links) are outside our control.
_SKIP_FILES = {"ISSUE.md", "SNIPPETS.md", "PAPER.md", "PAPERS.md"}

#: Backticked paths that name generated artifacts rather than committed
#: files are allowed to be absent.
_GENERATED_OK = ("results/", "out/", "build/", "dist/", "figures/")


def iter_markdown(root: Path):
    """Yield every markdown file under ``root`` outside skipped dirs."""
    for path in sorted(root.rglob("*.md")):
        if any(part in _SKIP_DIRS for part in path.parts):
            continue
        if path.relative_to(root).as_posix() in _SKIP_FILES:
            continue
        yield path


def check_file(path: Path, root: Path) -> list[str]:
    """Dead link descriptions for one markdown file."""
    text = path.read_text(encoding="utf-8")
    problems = []
    targets: list[tuple[str, str]] = []
    for match in _LINK.finditer(text):
        targets.append(("link", match.group(1)))
    for match in _BACKTICK_PATH.finditer(text):
        targets.append(("pointer", match.group(1)))
    for kind, raw in targets:
        target = raw.split("#", 1)[0]
        if not target:  # pure in-page anchor
            continue
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
            continue
        if kind == "pointer" and target.startswith(_GENERATED_OK):
            continue
        if target.startswith("/"):
            candidates = [root / target.lstrip("/")]
        elif kind == "pointer":
            # prose pointers are conventionally repo-root-relative, but
            # accept file-relative too
            candidates = [root / target, path.parent / target]
        else:
            candidates = [path.parent / target]
        if not any(c.exists() for c in candidates):
            problems.append(f"{path.relative_to(root)}: dead {kind} -> {raw}")
    return problems


def main(argv: list[str] | None = None) -> int:
    """Scan the repo and report dead intra-repo links."""
    args = argv if argv is not None else sys.argv[1:]
    root = Path(args[0]).resolve() if args else Path(__file__).resolve().parent.parent
    problems: list[str] = []
    checked = 0
    for path in iter_markdown(root):
        checked += 1
        problems.extend(check_file(path, root))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"{checked} markdown files checked, {len(problems)} dead links")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
